// The TaskVine worker (paper §2.2): manages one node's storage and compute.
// It executes tasks in sandboxes, keeps a flat cache of named objects,
// fetches remote data asynchronously through a bounded transfer queue,
// serves cached objects to peer workers, and hosts Library Instances for
// serverless calls. All policy lives at the manager; the worker provides
// mechanism and reports every state change (cache updates, completions).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/faults.hpp"
#include "common/mutex.hpp"
#include "files/url_fetcher.hpp"
#include "net/frame.hpp"
#include "net/msg_queue.hpp"
#include "proto/messages.hpp"
#include "task/resources.hpp"
#include "worker/cache_store.hpp"
#include "worker/executor.hpp"
#include "worker/library_instance.hpp"

namespace vine {

struct WorkerConfig {
  /// Stable identity; also used to derive the peer-transfer channel name.
  std::string id;

  /// Manager control address ("chan:NAME" or "host:port").
  std::string manager_addr;

  /// Capacity advertised to the manager.
  Resources resources{.cores = 4, .memory_mb = 8000, .disk_mb = 50000, .gpus = 0};

  /// Storage root: cache/ and sandboxes/ live below it. A persistent root
  /// lets worker-lifetime objects survive across workflows (hot cache).
  std::filesystem::path root_dir;

  /// Bound on cache storage in bytes; 0 = unlimited. When exceeded, LRU
  /// worker-lifetime objects are evicted (reported to the manager).
  std::int64_t cache_capacity_bytes = 0;

  /// Parallel downloads this worker performs (its own transfer queue).
  int max_concurrent_transfers = 4;

  /// URL access for fetch instructions; defaults to file:// support.
  std::shared_ptr<UrlFetcher> fetcher;

  /// Serve peer transfers over real TCP instead of an in-process channel.
  bool tcp_transfer_service = false;

  /// Keepalive cadence on the control connection; an idle worker still
  /// sends proof of life this often so the manager's heartbeat deadline
  /// only fires on genuinely hung workers. 0 disables heartbeats.
  int heartbeat_interval_ms = 1000;

  /// Idle window for transfer-side reads (peer header/blob, manager put
  /// blob): a peer that goes silent mid-transfer surfaces Errc::timeout
  /// after this long instead of wedging a fetch thread.
  int transfer_io_timeout_ms = 60000;

  /// Peer/url fetch retries before reporting failure to the manager, with
  /// exponential backoff between attempts (manager-side re-planning around
  /// the failed source is the next line of defense).
  int fetch_retries = 1;
  int fetch_backoff_ms = 50;

  /// Fault-injection hooks for chaos tests (see common/faults.hpp).
  /// Null = no injection, zero cost.
  faults::WorkerFaultsHandle faults;

  /// Shared structured-trace sink (vine::obs); null disables tracing. The
  /// worker hands it to its CacheStore, which emits the node's cache churn
  /// as "worker:<id>" alongside the manager's control-plane events.
  std::shared_ptr<obs::TraceSink> trace;
};

class Worker {
 public:
  /// Create a worker, start its services, and register with the manager.
  static Result<std::unique_ptr<Worker>> connect(WorkerConfig config);

  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Process manager instructions until shutdown is received or stop() is
  /// called. Blocking; typically run on a dedicated thread.
  void run();

  /// Launch run() on an internal thread (joined by the destructor).
  void start();

  /// Request shutdown and join all internal threads.
  void stop();

  const std::string& id() const { return config_.id; }
  CacheStore& cache() { return *cache_; }
  const std::string& transfer_addr() const { return transfer_addr_; }

  /// Fault injection: freeze the control loop while keeping the connection
  /// open — the worker stops processing instructions and heartbeating, as a
  /// deadlocked or GC-wedged worker would. Only the manager's heartbeat
  /// deadline can get rid of it.
  void inject_hang() { hung_.store(true); }
  void clear_hang() { hung_.store(false); }

 private:
  explicit Worker(WorkerConfig config);
  Status init_and_register();

  // --- manager message handling (main loop thread) ---
  void handle_frame(Frame frame);
  void handle_put(const proto::PutMsg& msg);
  void handle_fetch(const proto::FetchMsg& msg);
  void handle_mini_task(const proto::MiniTaskMsg& msg);
  void handle_run_task(const proto::RunTaskMsg& msg);
  void handle_unlink(const proto::UnlinkMsg& msg);
  void handle_cancel_transfer(const proto::CancelTransferMsg& msg);
  void handle_send_file(const proto::SendFileMsg& msg);
  void handle_end_workflow();

  // --- helpers callable from any internal thread ---
  void send_to_manager(const proto::AnyMessage& msg);
  void send_cache_update(const std::string& cache_name,
                         const std::string& transfer_id, bool ok,
                         std::int64_t size, const std::string& error);
  /// Report cache evictions to the manager (replica-table truth).
  void report_evictions();

  /// Audit the cache store against on-disk truth and abort on violation
  /// when audits_enabled() (debug builds). Called at quiescent points:
  /// end-of-workflow and stop().
  void maybe_audit(const char* where) const;

  // --- transfer queue ---
  struct TransferJob {
    proto::FetchMsg fetch;      // valid when !is_mini
    proto::MiniTaskMsg mini;    // valid when is_mini
    bool is_mini = false;
  };
  void transfer_worker_main();
  void do_fetch(const proto::FetchMsg& msg);
  /// True (and consumes the mark) when `transfer_id` was cancelled by the
  /// manager before the fetch got to run.
  bool take_cancel(const std::string& transfer_id);
  /// One peer-fetch attempt: connect, GET, verify the attested digest,
  /// store. do_fetch wraps this in the retry/backoff loop.
  Status fetch_from_peer(const proto::FetchMsg& msg);
  void do_mini_task(const proto::MiniTaskMsg& msg);

  // --- task execution ---
  void task_thread_main(proto::WireTask task);
  void start_library(proto::WireTask task);
  void invoke_function_call(const proto::WireTask& task);

  // --- peer transfer service ---
  void transfer_server_main();
  void serve_peer(const std::shared_ptr<Endpoint>& peer);
  /// Answer one GET on a peer connection (fault injection, digest
  /// attestation, zero-copy blob send). Returns false when the connection
  /// was dropped and serving must stop.
  bool serve_get(Endpoint& peer, const proto::GetMsg& get);
  void serve_pool_main();

  WorkerConfig config_;
  std::unique_ptr<CacheStore> cache_;
  std::unique_ptr<Executor> executor_;

  std::unique_ptr<Endpoint> manager_;
  std::unique_ptr<Listener> transfer_listener_;
  std::string transfer_addr_;

  MsgQueue<TransferJob> transfer_jobs_;
  std::vector<std::thread> transfer_pool_;
  std::thread transfer_server_;

  // Event-driven peer serving (TCP transport): endpoints that support
  // receiver callbacks push each inbound frame — and finally the death
  // notification — into serve_jobs_ as {peer_id, frame}; a small fixed
  // pool drains it. One pool serves every peer connection, replacing the
  // old thread-per-peer model. Transports without receiver support
  // (in-process channels) keep a legacy serve_peer thread instead.
  struct ServeJob {
    std::uint64_t peer_id = 0;
    Result<Frame> frame;
  };
  MsgQueue<ServeJob> serve_jobs_;
  std::vector<std::thread> serve_pool_;
  std::atomic<std::uint64_t> next_peer_id_{1};

  // Guards task_threads_ and peer_threads_ (appended by the main loop and
  // the transfer server, drained by stop()) and serve_peers_. Joins and
  // endpoint destruction happen with the containers swapped out, never
  // under the lock (an Endpoint dtor deregisters from the reactor).
  Mutex threads_mutex_{lock_rank::Rank::worker_threads};
  // running task executions
  std::vector<std::thread> task_threads_ VINE_GUARDED_BY(threads_mutex_);
  // per-peer-connection servers
  std::vector<std::thread> peer_threads_ VINE_GUARDED_BY(threads_mutex_);
  // receiver-driven peer connections, keyed by their serve-job id
  std::map<std::uint64_t, std::shared_ptr<Endpoint>> serve_peers_
      VINE_GUARDED_BY(threads_mutex_);

  // Library instances by name, plus their sandboxes and result pumps.
  struct LibraryHost {
    std::unique_ptr<LibraryInstance> instance;
    std::filesystem::path sandbox;
    std::thread pump;
  };
  // Guards libraries_ (library starts race function-call dispatch).
  // Instance stop/join runs on hosts extracted from the map first: joining
  // a pump thread under the lock would be a blocking call under a lock
  // (vine_analyze rule) and would wedge dispatch for its duration.
  Mutex libraries_mutex_{lock_rank::Rank::worker_libraries};
  std::map<std::string, LibraryHost> libraries_
      VINE_GUARDED_BY(libraries_mutex_);

  // Guards cancelled_transfers_: transfer ids cancelled by the manager
  // (stale prefetch predictions). Written by the control loop, consumed by
  // transfer-pool threads when their job reaches the front of the queue;
  // cleared at end_workflow so ids for transfers that completed before the
  // cancel arrived cannot pile up across workflows.
  Mutex cancels_mutex_{lock_rank::Rank::worker_cancels};
  std::set<std::string> cancelled_transfers_ VINE_GUARDED_BY(cancels_mutex_);

  std::thread run_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> hung_{false};  ///< inject_hang(): frozen control loop

  /// Worker-local monotonic clock; all reported timestamps share it.
  SteadyClock clock_;
};

}  // namespace vine
