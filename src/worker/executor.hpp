// Sandbox task execution (paper §2.2, Figure 4).
//
// Every task runs in a private sandbox directory: inputs are linked in
// under their user-visible names, the command (or registered function)
// runs with the sandbox as its working directory, declared outputs are
// harvested into the cache, and the sandbox is deleted. Command tasks run
// as real child processes (/bin/sh -c) with wall-time and disk-allocation
// enforcement; function tasks invoke a registered callable in-process.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "proto/messages.hpp"
#include "worker/cache_store.hpp"

namespace vine {

/// Outcome of one sandbox execution.
struct ExecOutcome {
  bool ok = false;
  bool resource_exceeded = false;  ///< killed for exceeding its allocation
  int exit_code = -1;
  std::string output;  ///< captured stdout (truncated) or function result
  std::string error;   ///< failure description
  std::vector<proto::OutputRecord> outputs;  ///< harvested into the cache
};

struct ExecutorConfig {
  std::filesystem::path sandbox_root;  ///< parent of per-task sandboxes
  std::string worker_id;
  std::size_t max_captured_output = 1 << 20;  ///< stdout capture cap (1 MiB)
  double disk_poll_seconds = 0.1;  ///< disk-enforcement poll interval
};

/// Executes wire tasks against a cache store. Thread-safe: each execute()
/// call is independent and may run on its own thread.
class Executor {
 public:
  Executor(ExecutorConfig config, CacheStore& cache);

  /// Run a command/function task to completion (blocking). Outputs are
  /// placed into the cache under their cache names at the mount's level.
  ExecOutcome execute(const proto::WireTask& task);

  /// Prepare a sandbox with all inputs linked in; exposed for the library
  /// machinery which owns its instance's sandbox for its whole life.
  Result<std::filesystem::path> make_sandbox(const proto::WireTask& task);

  /// Harvest declared outputs from a sandbox into the cache.
  Status harvest_outputs(const proto::WireTask& task,
                         const std::filesystem::path& sandbox,
                         std::vector<proto::OutputRecord>& outputs);

 private:
  ExecOutcome run_command(const proto::WireTask& task,
                          const std::filesystem::path& sandbox);
  ExecOutcome run_function(const proto::WireTask& task,
                           const std::filesystem::path& sandbox);

  ExecutorConfig config_;
  CacheStore& cache_;
};

}  // namespace vine
