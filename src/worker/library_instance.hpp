// Library Instances: the serverless execution model (paper §3.4, Figure 8).
//
// A LibraryTask installs a Library on a worker. The worker creates a
// bidirectional message channel (the paper's pipe), starts the instance,
// and waits for a JSON init message describing the functions offered. The
// instance then waits passively; each FunctionCall task becomes a JSON
// invocation message, the instance "forks" (spawns an invocation thread —
// the in-process analog of the paper's fork), runs the already-loaded
// function against the state built once by init, and returns a JSON result
// message. The expensive init cost is paid once per worker, not per call.
//
// Wire shapes on the instance channel:
//   instance -> worker:  {"type":"init","library":L,"functions":[...],"ok":B}
//                        {"type":"result","call_id":N,"ok":B,"output":S,"error":S}
//   worker -> instance:  {"type":"invoke","call_id":N,"function":S,"args":S}
//                        {"type":"stop"}
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "net/msg_queue.hpp"
#include "task/registry.hpp"
#include "task/task_spec.hpp"

namespace vine {

/// One running Library Instance on a worker.
class LibraryInstance {
 public:
  /// Start an instance of the registered blueprint `library_name`. The
  /// sandbox (inputs already linked in) is owned by the caller and must
  /// outlive the instance. `task_id` is the installing LibraryTask.
  /// Init runs asynchronously; the outcome arrives as the init message on
  /// from_instance().
  LibraryInstance(std::string library_name, TaskId task_id,
                  FunctionContext context);
  ~LibraryInstance();

  LibraryInstance(const LibraryInstance&) = delete;
  LibraryInstance& operator=(const LibraryInstance&) = delete;

  /// Queue a function invocation (worker -> instance message).
  void invoke(TaskId call_id, const std::string& function, const std::string& args);

  /// Messages from the instance (init, results). The worker's pump thread
  /// drains this.
  MsgQueue<json::Value>& from_instance() { return to_worker_; }

  /// Ask the instance to stop and join all its threads.
  void stop();

  const std::string& name() const { return library_name_; }
  TaskId task_id() const { return task_id_; }

 private:
  void dispatcher_main();

  std::string library_name_;
  TaskId task_id_;
  FunctionContext context_;

  MsgQueue<json::Value> to_instance_;
  MsgQueue<json::Value> to_worker_;

  std::thread dispatcher_;
  std::vector<std::thread> invocations_;
  std::atomic<bool> stopping_{false};
};

}  // namespace vine
