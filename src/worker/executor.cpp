#include "worker/executor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

extern char** environ;  // POSIX guarantees it; no header is required to declare it

#include "common/log.hpp"
#include "common/uuid.hpp"
#include "fsutil/fsutil.hpp"
#include "task/registry.hpp"

namespace vine {

namespace fs = std::filesystem;

namespace {

/// Resident set size of a process in bytes via /proc (Linux); 0 if unknown.
std::int64_t process_rss_bytes(pid_t pid) {
  std::ifstream statm("/proc/" + std::to_string(pid) + "/statm");
  if (!statm) return 0;
  long long size_pages = 0, rss_pages = 0;
  statm >> size_pages >> rss_pages;
  return rss_pages * static_cast<std::int64_t>(::sysconf(_SC_PAGESIZE));
}

}  // namespace

Executor::Executor(ExecutorConfig config, CacheStore& cache)
    : config_(std::move(config)), cache_(cache) {
  std::error_code ec;
  fs::create_directories(config_.sandbox_root, ec);
}

Result<fs::path> Executor::make_sandbox(const proto::WireTask& task) {
  fs::path sandbox = config_.sandbox_root /
                     ("t" + std::to_string(task.id) + "-" + generate_token(6));
  std::error_code ec;
  fs::create_directories(sandbox, ec);
  if (ec) {
    return Error{Errc::io_error, "cannot create sandbox: " + sandbox.string()};
  }
  for (const auto& in : task.inputs) {
    auto obj = cache_.object_path(in.cache_name);
    if (!obj.ok()) {
      remove_all_quiet(sandbox);
      return Error{Errc::not_found, "input not cached at worker: " + in.cache_name +
                                        " (as " + in.sandbox_name + ")"};
    }
    auto link = link_into_sandbox(*obj, sandbox / in.sandbox_name);
    if (!link.ok()) {
      remove_all_quiet(sandbox);
      return link.error();
    }
  }
  return sandbox;
}

Status Executor::harvest_outputs(const proto::WireTask& task, const fs::path& sandbox,
                                 std::vector<proto::OutputRecord>& outputs) {
  for (const auto& out : task.outputs) {
    fs::path produced = sandbox / out.sandbox_name;
    std::error_code ec;
    if (!fs::exists(produced, ec)) {
      return Error{Errc::task_failed,
                   "declared output missing: " + out.sandbox_name};
    }
    VINE_TRY_STATUS(cache_.adopt(out.cache_name, produced, out.level));
    auto e = cache_.entry(out.cache_name);
    outputs.push_back({out.cache_name, e.ok() ? e->size : 0});
  }
  return Status::success();
}

ExecOutcome Executor::execute(const proto::WireTask& task) {
  ExecOutcome outcome;
  auto sandbox = make_sandbox(task);
  if (!sandbox.ok()) {
    outcome.error = sandbox.error().to_string();
    return outcome;
  }

  switch (task.kind) {
    case TaskKind::command:
      outcome = run_command(task, *sandbox);
      break;
    case TaskKind::mini:
      // Mini-tasks run a command like plain tasks, or a registered
      // function for the built-in wrappers (vine.unpack and friends).
      outcome = task.function_name.empty() ? run_command(task, *sandbox)
                                           : run_function(task, *sandbox);
      break;
    case TaskKind::function:
      outcome = run_function(task, *sandbox);
      break;
    default:
      outcome.error = "executor cannot run task kind " +
                      std::string(task_kind_name(task.kind));
      break;
  }

  if (outcome.ok) {
    auto h = harvest_outputs(task, *sandbox, outcome.outputs);
    if (!h.ok()) {
      outcome.ok = false;
      outcome.error = h.error().to_string();
    }
  }
  remove_all_quiet(*sandbox);
  return outcome;
}

ExecOutcome Executor::run_command(const proto::WireTask& task, const fs::path& sandbox) {
  ExecOutcome outcome;
  fs::path stdout_path = sandbox / ".vine-stdout";

  // Build the child's environment and argv BEFORE forking. The worker is
  // multithreaded, so between fork() and exec() only async-signal-safe
  // calls are allowed — setenv() allocates and can deadlock/spin forever
  // on allocator locks a sibling thread held at fork time.
  std::map<std::string, std::string> env;
  for (char** e = environ; e && *e; ++e) {
    const char* eq = std::strchr(*e, '=');
    if (eq) env[std::string(*e, static_cast<std::size_t>(eq - *e))] = eq + 1;
  }
  for (const auto& [k, v] : task.env) env[k] = v;
  env["VINE_SANDBOX"] = sandbox.string();
  std::vector<std::string> env_strings;
  env_strings.reserve(env.size());
  for (const auto& [k, v] : env) env_strings.push_back(k + "=" + v);
  std::vector<char*> envp;
  envp.reserve(env_strings.size() + 1);
  for (auto& s : env_strings) envp.push_back(s.data());
  envp.push_back(nullptr);
  const char* argv[] = {"sh", "-c", task.command.c_str(), nullptr};

  pid_t pid = ::fork();
  if (pid < 0) {
    outcome.error = std::string("fork failed: ") + std::strerror(errno);
    return outcome;
  }

  if (pid == 0) {
    // Child: enter the sandbox and capture stdout; async-signal-safe
    // calls only from here to execve/_exit.
    if (::chdir(sandbox.c_str()) != 0) _exit(126);
    int out_fd = ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out_fd >= 0) {
      ::dup2(out_fd, STDOUT_FILENO);
      ::close(out_fd);
    }
    ::execve("/bin/sh", const_cast<char* const*>(argv), envp.data());
    _exit(127);
  }

  // Parent: poll for completion, enforcing wall-time and disk limits.
  const auto start = std::chrono::steady_clock::now();
  const auto poll = std::chrono::duration<double>(config_.disk_poll_seconds);
  bool killed_for_time = false;
  bool killed_for_disk = false;
  bool killed_for_memory = false;
  int status = 0;
  while (true) {
    pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0 && errno != EINTR) {
      outcome.error = std::string("waitpid failed: ") + std::strerror(errno);
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return outcome;
    }

    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (task.timeout_seconds > 0 && elapsed > task.timeout_seconds) {
      killed_for_time = true;
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      break;
    }
    if (task.resources.disk_mb > 0) {
      auto used = tree_size(sandbox);
      if (used.ok() && *used > task.resources.disk_mb * 1000 * 1000) {
        killed_for_disk = true;
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
    }
    // Memory enforcement samples the command shell's RSS (full-tree
    // accounting would need cgroups; the shell holds most workflows'
    // footprint since $(...) expansions live in it).
    if (task.resources.memory_mb > 0 &&
        process_rss_bytes(pid) > task.resources.memory_mb * 1000 * 1000) {
      killed_for_memory = true;
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      break;
    }
    std::this_thread::sleep_for(poll);
  }

  if (killed_for_disk) {
    outcome.resource_exceeded = true;
    outcome.error = "task exceeded its disk allocation of " +
                    std::to_string(task.resources.disk_mb) + "MB";
    return outcome;
  }
  if (killed_for_memory) {
    outcome.resource_exceeded = true;
    outcome.error = "task exceeded its memory allocation of " +
                    std::to_string(task.resources.memory_mb) + "MB";
    return outcome;
  }
  if (killed_for_time) {
    outcome.error = "task exceeded its wall-time limit of " +
                    std::to_string(task.timeout_seconds) + "s";
    return outcome;
  }

  // Fast tasks can finish between polls; enforce the disk allocation on
  // the final sandbox state as well.
  if (task.resources.disk_mb > 0) {
    auto used = tree_size(sandbox);
    if (used.ok() && *used > task.resources.disk_mb * 1000 * 1000) {
      outcome.resource_exceeded = true;
      outcome.error = "task exceeded its disk allocation of " +
                      std::to_string(task.resources.disk_mb) + "MB";
      return outcome;
    }
  }

  // Capture (bounded) stdout.
  if (auto text = read_file(stdout_path); text.ok()) {
    outcome.output = std::move(*text);
    if (outcome.output.size() > config_.max_captured_output) {
      outcome.output.resize(config_.max_captured_output);
    }
  }
  remove_all_quiet(stdout_path);

  if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
    outcome.ok = (outcome.exit_code == 0);
    if (!outcome.ok) {
      outcome.error = "command exited with status " +
                      std::to_string(outcome.exit_code);
    }
  } else if (WIFSIGNALED(status)) {
    outcome.error = "command killed by signal " + std::to_string(WTERMSIG(status));
  } else {
    outcome.error = "command ended abnormally";
  }
  return outcome;
}

ExecOutcome Executor::run_function(const proto::WireTask& task, const fs::path& sandbox) {
  ExecOutcome outcome;
  auto fn = FunctionRegistry::instance().lookup(task.function_name);
  if (!fn.ok()) {
    outcome.error = fn.error().to_string();
    return outcome;
  }
  FunctionContext ctx;
  ctx.sandbox_dir = sandbox.string();
  ctx.worker_id = config_.worker_id;
  auto result = (*fn)(task.function_args, ctx);
  if (!result.ok()) {
    outcome.error = "function failed: " + result.error().to_string();
    return outcome;
  }
  outcome.ok = true;
  outcome.exit_code = 0;
  outcome.output = std::move(*result);
  return outcome;
}

}  // namespace vine
