#include "worker/library_instance.hpp"

#include "common/log.hpp"

namespace vine {

using json::Object;
using json::Value;

LibraryInstance::LibraryInstance(std::string library_name, TaskId task_id,
                                 FunctionContext context)
    : library_name_(std::move(library_name)),
      task_id_(task_id),
      context_(std::move(context)) {
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

LibraryInstance::~LibraryInstance() { stop(); }

void LibraryInstance::invoke(TaskId call_id, const std::string& function,
                             const std::string& args) {
  Object o;
  o["type"] = "invoke";
  o["call_id"] = static_cast<std::int64_t>(call_id);
  o["function"] = function;
  o["args"] = args;
  to_instance_.push(Value(std::move(o)));
}

void LibraryInstance::stop() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    to_instance_.push(Value(Object{{"type", Value("stop")}}));
    to_instance_.close();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void LibraryInstance::dispatcher_main() {
  // Phase 1: init — build the library state once (the expensive part).
  auto blueprint = LibraryRegistry::instance().lookup(library_name_);
  LibraryState state;
  {
    Object init;
    init["type"] = "init";
    init["library"] = library_name_;
    if (!blueprint.ok()) {
      init["ok"] = false;
      init["error"] = blueprint.error().to_string();
      to_worker_.push(Value(std::move(init)));
      return;
    }
    auto st = blueprint->init ? blueprint->init(context_)
                              : Result<LibraryState>(LibraryState{});
    if (!st.ok()) {
      init["ok"] = false;
      init["error"] = st.error().to_string();
      to_worker_.push(Value(std::move(init)));
      return;
    }
    state = std::move(*st);
    init["ok"] = true;
    json::Array fns;
    for (const auto& [name, _] : blueprint->functions) fns.emplace_back(name);
    init["functions"] = Value(std::move(fns));
    to_worker_.push(Value(std::move(init)));
  }

  // Phase 2: passively wait for invocations; "fork" per call.
  while (true) {
    auto msg = to_instance_.pop(std::chrono::milliseconds(200));
    if (!msg) {
      if (to_instance_.closed()) break;
      continue;
    }
    std::string type = msg->get_string("type");
    if (type == "stop") break;
    if (type != "invoke") continue;

    TaskId call_id = static_cast<TaskId>(msg->get_int("call_id"));
    std::string fn_name = msg->get_string("function");
    std::string args = msg->get_string("args");

    invocations_.emplace_back([this, &bp = *blueprint, state, call_id,
                               fn_name = std::move(fn_name),
                               args = std::move(args)] {
      Object result;
      result["type"] = "result";
      result["call_id"] = static_cast<std::int64_t>(call_id);
      auto it = bp.functions.find(fn_name);
      if (it == bp.functions.end()) {
        result["ok"] = false;
        result["error"] = "library " + library_name_ + " has no function " + fn_name;
      } else {
        auto out = it->second(state, args, context_);
        if (out.ok()) {
          result["ok"] = true;
          result["output"] = std::move(*out);
        } else {
          result["ok"] = false;
          result["error"] = out.error().to_string();
        }
      }
      to_worker_.push(Value(std::move(result)));
    });
  }

  for (auto& t : invocations_) {
    if (t.joinable()) t.join();
  }
  to_worker_.close();
}

}  // namespace vine
