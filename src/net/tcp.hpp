// Real TCP transport (POSIX sockets). Used by the standalone worker binary
// and by the TCP integration tests; identical framing and semantics to the
// in-process channel transport.
#pragma once

#include <memory>
#include <string>

#include "net/frame.hpp"

namespace vine {

/// Listen on 127.0.0.1:`port` (port 0 picks a free port; see address()).
Result<std::unique_ptr<Listener>> tcp_listen(std::uint16_t port);

/// Connect to "host:port".
Result<std::unique_ptr<Endpoint>> tcp_connect(const std::string& address,
                                              std::chrono::milliseconds timeout);

}  // namespace vine
