#include "net/frame.hpp"

#include "net/channel.hpp"
#include "net/tcp.hpp"

namespace vine {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v);
  out += static_cast<char>(v >> 8);
  out += static_cast<char>(v >> 16);
  out += static_cast<char>(v >> 24);
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint8_t>(p[0]) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  std::string payload;
  if (frame.kind == Frame::Kind::json) {
    payload = frame.msg.dump();
  } else {
    put_u32(payload, static_cast<std::uint32_t>(frame.tag.size()));
    payload += frame.tag;
    payload += frame.data;
  }
  std::string out;
  out.reserve(payload.size() + 5);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += static_cast<char>(frame.kind);
  out += payload;
  return out;
}

Result<Frame> decode_frame_payload(char kind, std::string payload) {
  if (kind == 'J') {
    VINE_TRY(json::Value v, json::parse(payload));
    return Frame::make_json(std::move(v));
  }
  if (kind == 'B') {
    if (payload.size() < 4) {
      return Error{Errc::parse_error, "blob frame too short"};
    }
    std::uint32_t tag_len = get_u32(payload.data());
    if (payload.size() < 4 + static_cast<std::size_t>(tag_len)) {
      return Error{Errc::parse_error, "blob tag exceeds frame"};
    }
    std::string tag = payload.substr(4, tag_len);
    payload.erase(0, 4 + tag_len);
    return Frame::make_blob(std::move(tag), std::move(payload));
  }
  return Error{Errc::parse_error, std::string("unknown frame kind: ") + kind};
}

Result<std::unique_ptr<Endpoint>> connect_to(const std::string& address,
                                             std::chrono::milliseconds timeout) {
  if (address.rfind("chan:", 0) == 0) {
    return ChannelFabric::instance().connect(address, timeout);
  }
  return tcp_connect(address, timeout);
}

}  // namespace vine
