#include "net/frame.hpp"

#include <fstream>

#include "net/channel.hpp"
#include "net/tcp.hpp"

namespace vine {

void append_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v);
  out += static_cast<char>(v >> 8);
  out += static_cast<char>(v >> 16);
  out += static_cast<char>(v >> 24);
}

std::uint32_t read_u32(const char* p) {
  return static_cast<std::uint8_t>(p[0]) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

void append_frame_header(std::string& out, std::uint32_t payload_len,
                         Frame::Kind kind) {
  append_u32(out, payload_len);
  out += static_cast<char>(kind);
}

std::string encode_frame(const Frame& frame) {
  std::string payload;
  if (frame.kind == Frame::Kind::json) {
    payload = frame.msg.dump();
  } else {
    append_u32(payload, static_cast<std::uint32_t>(frame.tag.size()));
    payload += frame.tag;
    payload += frame.data;
  }
  std::string out;
  out.reserve(payload.size() + 5);
  append_frame_header(out, static_cast<std::uint32_t>(payload.size()),
                      frame.kind);
  out += payload;
  return out;
}

Status Endpoint::send_blob_file(const std::string& tag, const std::string& path,
                                std::uint64_t size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{Errc::io_error, "cannot open blob file " + path};
  std::string data(size, '\0');
  in.read(data.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    return Error{Errc::io_error, "short read serving " + path};
  }
  return send_blob(tag, std::move(data));
}

Result<Frame> decode_frame_view(char kind, std::string_view payload) {
  if (kind == 'J') {
    VINE_TRY(json::Value v, json::parse(payload));
    return Frame::make_json(std::move(v));
  }
  if (kind == 'B') {
    if (payload.size() < 4) {
      return Error{Errc::parse_error, "blob frame too short"};
    }
    std::uint32_t tag_len = read_u32(payload.data());
    if (payload.size() < 4 + static_cast<std::size_t>(tag_len)) {
      return Error{Errc::parse_error, "blob tag exceeds frame"};
    }
    // Exactly one copy of the blob bytes, straight out of the caller's
    // receive buffer (the string overload used to copy the payload and
    // then memmove the blob over the erased tag prefix — twice the
    // traffic on a 64 MB transfer).
    return Frame::make_blob(std::string(payload.substr(4, tag_len)),
                            std::string(payload.substr(4 + tag_len)));
  }
  return Error{Errc::parse_error, std::string("unknown frame kind: ") + kind};
}

Result<Frame> decode_frame_payload(char kind, std::string payload) {
  return decode_frame_view(kind, payload);
}

Result<std::unique_ptr<Endpoint>> connect_to(const std::string& address,
                                             std::chrono::milliseconds timeout) {
  if (address.rfind("chan:", 0) == 0) {
    return ChannelFabric::instance().connect(address, timeout);
  }
  return tcp_connect(address, timeout);
}

}  // namespace vine
