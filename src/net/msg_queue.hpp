// Thread-safe message queue with blocking/timeout pop. The manager and each
// worker own one inbox; reader/executor/transfer threads push events into
// it, and a single consumer thread drains it — the concurrency pattern used
// throughout the real runtime (message passing, no shared mutable state).
//
// Concurrency: mutex_ ranks msg_queue — the innermost data lock — so no
// other vine lock may be acquired while holding it, and pop() (which blocks
// in a condvar wait) must never be called with any vine lock held
// (vine_analyze reports that as lock-held-across-blocking-call).
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.hpp"

namespace vine {

template <typename T>
class MsgQueue {
 public:
  /// Push an item and wake one waiter. Returns false if the queue is closed.
  bool push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Pop, waiting up to `timeout`. nullopt on timeout or when the queue is
  /// closed and drained.
  std::optional<T> pop(std::chrono::milliseconds timeout) {
    // Wait against an absolute deadline so spurious wakeups (and notify
    // storms from concurrent pushes) re-arm with the remaining time instead
    // of restarting the full timeout.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    UniqueLock lock(mutex_);
    while (items_.empty() && !closed_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Close the queue: pushes fail, waiters wake. Items already queued can
  /// still be popped.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  // Guards items_ and closed_; cv_ is signalled under it on push/close.
  mutable Mutex mutex_{lock_rank::Rank::msg_queue};
  CondVar cv_;
  std::deque<T> items_ VINE_GUARDED_BY(mutex_);
  bool closed_ VINE_GUARDED_BY(mutex_) = false;
};

}  // namespace vine
