#include "net/reactor.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>
#ifndef VINE_DISABLE_SENDFILE
#include <sys/sendfile.h>
#endif

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace vine {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Raw-descriptor close/shutdown with names no class method shares: the
/// lock-graph analyzer resolves bare calls by name, and `close(fd)` inside
/// a ReactorConn method would otherwise resolve to ReactorConn::close.
void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_fd(int fd) { ::shutdown(fd, SHUT_RDWR); }

/// Backpressure cap on queued-but-unwritten bytes per connection. A single
/// frame larger than the cap still enqueues (the cap gates *additional*
/// frames), so 512 MB blobs are never rejected — later senders just wait.
constexpr std::size_t kSendBufCap = 64u * 1024 * 1024;

/// recv() chunk per read; level-triggered epoll re-reports leftovers, so a
/// bounded drain per wakeup keeps one fast peer from starving the rest.
constexpr std::size_t kReadChunk = 256u * 1024;

/// Per-call byte budget for sendfile (the kernel copies nothing; this only
/// bounds time spent on one connection per wakeup).
constexpr std::size_t kSendfileChunk = 1u * 1024 * 1024;

/// Head buffers larger than this are not recycled (a huge JSON message
/// should not pin its capacity on the connection forever).
constexpr std::size_t kSpareHeadCap = 64u * 1024;
constexpr std::size_t kSpareHeads = 8;

std::atomic<bool> g_sendfile_enabled{
#ifdef VINE_DISABLE_SENDFILE
    false
#else
    true
#endif
};

}  // namespace

bool sendfile_enabled() {
  return g_sendfile_enabled.load(std::memory_order_relaxed);
}

void set_sendfile_enabled(bool on) {
#ifdef VINE_DISABLE_SENDFILE
  (void)on;  // the sendfile call is compiled out; the fallback is the path
#else
  g_sendfile_enabled.store(on, std::memory_order_relaxed);
#endif
}

// ---------------------------------------------------------------------------
// Reactor

/// One epoll shard: the event loop thread plus the op queue app threads use
/// to reach it. All reads, writes, accepts, registration, and teardown of
/// its sockets happen on the loop thread; everything reactor-thread-confined
/// in ReactorConn belongs to this thread.
class Reactor {
 public:
  struct Op {
    enum class Kind { add_conn, del_conn, flush, add_listener, del_listener, stop };
    Kind kind;
    ConnPtr conn;
    ReactorListener* listener = nullptr;
  };

  Reactor() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wakefd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakefd_;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev);
    thread_ = std::thread([this] { run(); });
  }

  ~Reactor() {
    enqueue(Op{Op::Kind::stop, nullptr, nullptr});
    thread_.join();
    ::close(wakefd_);
    ::close(epfd_);
  }

  /// Queue an op for the loop thread and wake it. Safe from any thread.
  void enqueue(Op op) {
    {
      MutexLock lock(ops_mu_);
      ops_.push_back(std::move(op));
    }
    // One eventfd write per wakeup, not per op: the loop clears kicked_
    // before draining, so a racing enqueue either lands in this drain or
    // re-arms the eventfd itself.
    if (!kicked_.exchange(true, std::memory_order_acq_rel)) {
      ::eventfd_write(wakefd_, 1);
    }
  }

  bool on_this_thread() const { return t_current == this; }

  ReactorStats snapshot() const {
    ReactorStats s;
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    s.frames_in = frames_in_.load(std::memory_order_relaxed);
    s.frames_out = frames_out_.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
    s.sendfile_bytes = sendfile_bytes_.load(std::memory_order_relaxed);
    s.writev_calls = writev_calls_.load(std::memory_order_relaxed);
    s.accepts = accepts_.load(std::memory_order_relaxed);
    s.conns_open = conns_open_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class ReactorConn;
  friend class ReactorListener;
  friend class ReactorPool;

  using Clock = std::chrono::steady_clock;

  static thread_local Reactor* t_current;

  void run();
  void drain_ops(bool* stopping);
  void do_add_conn(ConnPtr c);
  void remove_now(const ConnPtr& c);
  void do_add_listener(ReactorListener* l);
  void remove_listener_now(ReactorListener* l);
  void do_accept(ReactorListener* l);
  void do_read(ReactorConn* c);
  void finish_connect(ReactorConn* c);
  void flush_writes(ReactorConn* c);
  void teardown(ReactorConn* c, Error err);
  void update_events(ReactorConn* c);
  void set_deadline(ReactorConn* c, Clock::time_point tp);
  void scan_deadlines();

  int epfd_ = -1;
  int wakefd_ = -1;
  std::thread thread_;

  // Guards ops_, the cross-thread mailbox into the loop: app threads push
  // registration/flush/teardown ops under it, the loop thread swaps the
  // vector out. Never held across a syscall or another lock.
  Mutex ops_mu_{lock_rank::Rank::net_reactor};
  std::vector<Op> ops_ VINE_GUARDED_BY(ops_mu_);
  std::atomic<bool> kicked_{false};

  // Loop-thread-confined socket registries (epoll events carry fds, so a
  // teardown earlier in a batch simply makes later lookups miss).
  std::unordered_map<int, ConnPtr> conns_;
  std::unordered_map<int, ReactorListener*> listeners_;
  int armed_deadlines_ = 0;  ///< conns with an active deadline_
  std::string read_scratch_;  ///< recv landing block, reused across conns
  std::vector<Frame> decode_batch_;  ///< per-drain frame batch, reused

  // Data-plane counters; written on the loop thread, sampled from anywhere.
  std::atomic<std::int64_t> wakeups_{0}, frames_in_{0}, frames_out_{0},
      bytes_in_{0}, bytes_out_{0}, sendfile_bytes_{0}, writev_calls_{0},
      accepts_{0}, conns_open_{0};
};

thread_local Reactor* Reactor::t_current = nullptr;

void Reactor::run() {
  t_current = this;
  // Block SIGPIPE on this thread: writev/sendfile to a reset peer then
  // fails with EPIPE (handled as a normal teardown) instead of killing the
  // process. The signal stays blocked-and-pending, which is harmless.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGPIPE);
  ::pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  std::vector<epoll_event> events(64);
  bool stopping = false;
  while (!stopping) {
    // 20 ms tick while any deadline is armed keeps mid-frame stall and
    // connect timeouts prompt; otherwise sleep long (ops kick via eventfd).
    int timeout_ms = armed_deadlines_ > 0 ? 20 : 500;
    int n = ::epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                         timeout_ms);
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — process is tearing down
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      std::uint32_t ev = events[i].events;
      if (fd == wakefd_) {
        eventfd_t v;
        ::eventfd_read(wakefd_, &v);
        continue;
      }
      auto lit = listeners_.find(fd);
      if (lit != listeners_.end()) {
        do_accept(lit->second);
        continue;
      }
      auto cit = conns_.find(fd);
      if (cit == conns_.end()) continue;  // torn down earlier in this batch
      ConnPtr c = cit->second;            // keep alive across teardown
      if (c->connecting_) {
        if (ev & (EPOLLOUT | EPOLLERR | EPOLLHUP)) finish_connect(c.get());
        continue;
      }
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        do_read(c.get());
        if (!c->registered_) continue;
      }
      if (ev & EPOLLOUT) flush_writes(c.get());
    }
    drain_ops(&stopping);
    if (armed_deadlines_ > 0) scan_deadlines();
  }
  // Defensive: anything still registered at stop (there should be nothing —
  // conns hold the Reactor alive) gets a terminal error.
  for (auto& [fd, c] : conns_) {
    c->die(Error{Errc::unavailable, "reactor stopped"});
  }
  conns_.clear();
  listeners_.clear();
  t_current = nullptr;
}

void Reactor::drain_ops(bool* stopping) {
  // Clear the kick flag *before* swapping the queue: an enqueue that lands
  // after the swap sees kicked_ == false and re-arms the eventfd.
  kicked_.store(false, std::memory_order_release);
  std::vector<Op> ops;
  {
    MutexLock lock(ops_mu_);
    ops.swap(ops_);
  }
  for (auto& op : ops) {
    switch (op.kind) {
      case Op::Kind::add_conn:
        do_add_conn(std::move(op.conn));
        break;
      case Op::Kind::del_conn:
        remove_now(op.conn);
        break;
      case Op::Kind::flush:
        op.conn->flush_queued_.store(false, std::memory_order_release);
        if (op.conn->registered_) flush_writes(op.conn.get());
        break;
      case Op::Kind::add_listener:
        do_add_listener(op.listener);
        break;
      case Op::Kind::del_listener:
        remove_listener_now(op.listener);
        break;
      case Op::Kind::stop:
        *stopping = true;
        break;
    }
  }
}

void Reactor::do_add_conn(ConnPtr c) {
  epoll_event ev{};
  ev.data.fd = c->fd_;
  ev.events =
      EPOLLIN | (c->connecting_ ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, c->fd_, &ev) < 0) {
    c->die(Error{Errc::io_error, errno_text("epoll_ctl add " + c->peer_)});
    MutexLock lock(c->mu_);
    c->released_ = true;
    c->cv_.notify_all();
    return;
  }
  c->registered_ = true;
  if (c->connecting_) {
    set_deadline(c.get(), Clock::now() + c->connect_timeout_);
  }
  conns_open_.fetch_add(1, std::memory_order_relaxed);
  int fd = c->fd_;
  conns_.emplace(fd, std::move(c));
}

void Reactor::remove_now(const ConnPtr& c) {
  if (c->registered_) {
    set_deadline(c.get(), Clock::time_point::max());
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd_, nullptr);
    c->registered_ = false;
    conns_open_.fetch_sub(1, std::memory_order_relaxed);
    conns_.erase(c->fd_);
  }
  MutexLock lock(c->mu_);
  c->released_ = true;
  c->cv_.notify_all();
}

void Reactor::do_add_listener(ReactorListener* l) {
  epoll_event ev{};
  ev.data.fd = l->fd_;
  ev.events = EPOLLIN;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, l->fd_, &ev) == 0) {
    l->registered_ = true;
    listeners_.emplace(l->fd_, l);
  }
}

void Reactor::remove_listener_now(ReactorListener* l) {
  if (l->registered_) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, l->fd_, nullptr);
    l->registered_ = false;
    listeners_.erase(l->fd_);
  }
  MutexLock lock(l->mu_);
  l->released_ = true;
  l->cv_.notify_all();
}

void Reactor::do_accept(ReactorListener* l) {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    int cfd = ::accept4(l->fd_, reinterpret_cast<sockaddr*>(&addr), &len,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Listener closed or broken: stop watching so level-triggered epoll
      // does not spin; the owner's release handshake still completes.
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, l->fd_, nullptr);
      l->registered_ = false;
      listeners_.erase(l->fd_);
      return;
    }
    accepts_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
    std::string peer = std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
    // Accepted connections round-robin across shards for read/write-side
    // parallelism; this listener only performs the accept.
    auto shard = ReactorPool::instance().next_shard();
    auto c = std::shared_ptr<ReactorConn>(new ReactorConn(
        shard, cfd, std::move(peer), /*connecting=*/false));
    shard->enqueue(Op{Op::Kind::add_conn, c, nullptr});
    if (!l->pending_.push(c)) {
      // Listener closed while we were accepting: tear the conn down.
      c->close();
      c->reactor_->enqueue(Op{Op::Kind::del_conn, c, nullptr});
    }
  }
}

void Reactor::finish_connect(ReactorConn* c) {
  int err = 0;
  socklen_t elen = sizeof err;
  ::getsockopt(c->fd_, SOL_SOCKET, SO_ERROR, &err, &elen);
  if (err != 0) {
    teardown(c, Error{Errc::unavailable,
                      "connect " + c->peer_ + ": " + std::strerror(err)});
    return;
  }
  c->connecting_ = false;
  set_deadline(c, Clock::time_point::max());
  update_events(c);
  {
    MutexLock lock(c->mu_);
    c->connected_flag_ = true;
    c->cv_.notify_all();
  }
  flush_writes(c);
}

void Reactor::do_read(ReactorConn* c) {
  // recv into the loop's one scratch block, then append exactly the bytes
  // that arrived. Resizing rbuf_ by kReadChunk before each recv would
  // zero-fill 256 KB per read event — a memset that dwarfs a small frame
  // and saturates memory bandwidth at high connection counts.
  if (read_scratch_.size() < kReadChunk) read_scratch_.resize(kReadChunk);
  bool progress = false;
  for (int round = 0; round < 4; ++round) {
    ssize_t n = ::recv(c->fd_, read_scratch_.data(), kReadChunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      teardown(c, Error{Errc::unavailable, errno_text("recv from " + c->peer_)});
      return;
    }
    if (n == 0) {
      teardown(c, Error{Errc::unavailable, "peer closed: " + c->peer_});
      return;
    }
    c->rbuf_.append(read_scratch_.data(), static_cast<std::size_t>(n));
    bytes_in_.fetch_add(n, std::memory_order_relaxed);
    progress = true;
    if (static_cast<std::size_t>(n) < kReadChunk) break;
  }
  if (!progress) return;

  // Batched decode: every complete frame buffered so far in one pass,
  // then one lock acquisition to deliver them all.
  bool bad_frame = false;
  Error frame_err;
  for (;;) {
    std::size_t avail = c->rbuf_.size() - c->rbuf_off_;
    if (avail < 5) break;
    const char* p = c->rbuf_.data() + c->rbuf_off_;
    std::uint32_t len = read_u32(p);
    char kind = p[4];
    if (len > kMaxFramePayload) {
      bad_frame = true;
      frame_err = Error{Errc::protocol_error, "oversized frame from " + c->peer_};
      break;
    }
    if (avail < 5u + len) {
      c->rbuf_.reserve(c->rbuf_off_ + 5u + len);
      break;
    }
    c->rbuf_off_ += 5u + len;
    auto fr = decode_frame_view(kind, std::string_view(p + 5, len));
    if (!fr.ok()) {
      bad_frame = true;
      frame_err = Error{Errc::protocol_error,
                        "bad frame from " + c->peer_ + ": " + fr.error().message};
      break;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    decode_batch_.push_back(std::move(fr).value());
  }
  c->deliver_batch(decode_batch_);  // frames before a bad one still count
  if (bad_frame) {
    teardown(c, std::move(frame_err));
    return;
  }

  // Compact the consumed prefix (cheap clear when fully drained).
  if (c->rbuf_off_ == c->rbuf_.size()) {
    c->rbuf_.clear();
    c->rbuf_off_ = 0;
  } else if (c->rbuf_off_ >= 64u * 1024) {
    c->rbuf_.erase(0, c->rbuf_off_);
    c->rbuf_off_ = 0;
  }

  // Progress deadline: a partially received frame must keep moving within
  // the io-timeout window or the peer is declared stalled.
  bool partial = c->rbuf_.size() > c->rbuf_off_;
  set_deadline(c, partial
                      ? Clock::now() + std::chrono::milliseconds(c->io_timeout_ms_.load(
                            std::memory_order_relaxed))
                      : Clock::time_point::max());
}

void Reactor::flush_writes(ReactorConn* c) {
  bool fatal = false;
  Error err;
  bool want_write = false;
  {
    UniqueLock lock(c->mu_);
    while (!c->out_.empty()) {
      auto& front = c->out_.front();
      bool head_done = front.head_off >= front.head.size();
      bool body_done = front.body_off >= front.body.size();
      if (front.file_fd >= 0 && head_done && body_done && front.file_left > 0) {
        if (sendfile_enabled()) {
#ifndef VINE_DISABLE_SENDFILE
          std::size_t want = front.file_left < kSendfileChunk
                                 ? static_cast<std::size_t>(front.file_left)
                                 : kSendfileChunk;
          off_t off = static_cast<off_t>(front.file_off);
          ssize_t n = ::sendfile(c->fd_, front.file_fd, &off, want);
          if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
              want_write = true;
              break;
            }
            fatal = true;
            err = Error{Errc::unavailable, errno_text("sendfile to " + c->peer_)};
            break;
          }
          if (n == 0) {
            fatal = true;
            err = Error{Errc::io_error, "blob file truncated serving " + c->peer_};
            break;
          }
          front.file_off += static_cast<std::uint64_t>(n);
          front.file_left -= static_cast<std::uint64_t>(n);
          c->out_bytes_ -= static_cast<std::size_t>(n);
          bytes_out_.fetch_add(n, std::memory_order_relaxed);
          sendfile_bytes_.fetch_add(n, std::memory_order_relaxed);
          if (front.file_left > 0) continue;
#endif
        } else {
          // Fallback (VINE_DISABLE_SENDFILE / runtime toggle): stage the
          // next file chunk into the body buffer and let writev move it.
          std::size_t want = front.file_left < kReadChunk
                                 ? static_cast<std::size_t>(front.file_left)
                                 : kReadChunk;
          front.body.resize(want);
          front.body_off = 0;
          ssize_t n = ::pread(front.file_fd, front.body.data(), want,
                              static_cast<off_t>(front.file_off));
          if (n < 0 && errno == EINTR) {
            front.body.clear();
            continue;
          }
          if (n <= 0) {
            fatal = true;
            err = Error{Errc::io_error, "blob file read failed serving " + c->peer_};
            break;
          }
          front.body.resize(static_cast<std::size_t>(n));
          front.file_off += static_cast<std::uint64_t>(n);
          front.file_left -= static_cast<std::uint64_t>(n);
          continue;  // writev path below ships the staged body
        }
        // sendfile finished this chunk (file_left == 0): fall through to
        // completion handling via the advance loop's done-check by writing
        // zero buffered bytes — simpler to just complete inline:
        if (front.file_fd >= 0) ::close(front.file_fd);
        front.file_fd = -1;
        if (c->spare_heads_.size() < kSpareHeads &&
            front.head.capacity() <= kSpareHeadCap) {
          front.head.clear();
          c->spare_heads_.push_back(std::move(front.head));
        }
        frames_out_.fetch_add(1, std::memory_order_relaxed);
        c->out_.pop_front();
        continue;
      }

      // Gather buffered spans (heads + bodies) across queued frames into
      // one vectored write. Stop at the first frame that still needs file
      // bytes: those must go out in order via the branch above.
      iovec iov[64];
      int cnt = 0;
      std::size_t batch = 0;
      for (auto& ch : c->out_) {
        if (ch.head_off < ch.head.size() && cnt < 64) {
          iov[cnt].iov_base = const_cast<char*>(ch.head.data()) + ch.head_off;
          iov[cnt].iov_len = ch.head.size() - ch.head_off;
          batch += iov[cnt].iov_len;
          ++cnt;
        }
        if (ch.body_off < ch.body.size() && cnt < 64) {
          iov[cnt].iov_base = const_cast<char*>(ch.body.data()) + ch.body_off;
          iov[cnt].iov_len = ch.body.size() - ch.body_off;
          batch += iov[cnt].iov_len;
          ++cnt;
        }
        if (ch.file_fd >= 0 && ch.file_left > 0) break;
        if (cnt >= 63 || batch >= 4u * 1024 * 1024) break;
      }
      if (cnt == 0) break;  // nothing buffered (front is mid-file)
      ssize_t n = ::writev(c->fd_, iov, cnt);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          want_write = true;
          break;
        }
        fatal = true;
        err = Error{Errc::unavailable, errno_text("write to " + c->peer_)};
        break;
      }
      writev_calls_.fetch_add(1, std::memory_order_relaxed);
      bytes_out_.fetch_add(n, std::memory_order_relaxed);
      c->out_bytes_ -= static_cast<std::size_t>(n);
      // Advance chunk offsets through the written bytes; recycle and pop
      // fully shipped frames.
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0 && !c->out_.empty()) {
        auto& ch = c->out_.front();
        std::size_t hrem = ch.head.size() - ch.head_off;
        std::size_t take = left < hrem ? left : hrem;
        ch.head_off += take;
        left -= take;
        std::size_t brem = ch.body.size() - ch.body_off;
        take = left < brem ? left : brem;
        ch.body_off += take;
        left -= take;
        bool shipped = ch.head_off >= ch.head.size() &&
                       ch.body_off >= ch.body.size();
        if (!shipped) break;
        if (ch.file_fd >= 0 && ch.file_left > 0) {
          // Fallback staging consumed: free the staged body for the next
          // pread round.
          ch.body.clear();
          ch.body_off = 0;
          break;
        }
        if (ch.file_fd >= 0) ::close(ch.file_fd);
        if (c->spare_heads_.size() < kSpareHeads &&
            ch.head.capacity() <= kSpareHeadCap) {
          ch.head.clear();
          c->spare_heads_.push_back(std::move(ch.head));
        }
        frames_out_.fetch_add(1, std::memory_order_relaxed);
        c->out_.pop_front();
      }
    }
    if (!fatal) {
      // Wake backpressured senders (and drain-waiters on empty).
      if (c->out_bytes_ <= kSendBufCap || c->out_.empty()) c->cv_.notify_all();
    }
  }
  if (fatal) {
    teardown(c, std::move(err));
    return;
  }
  if (want_write != c->want_write_) {
    c->want_write_ = want_write;
    update_events(c);
  }
}

void Reactor::teardown(ReactorConn* c, Error err) {
  if (!c->registered_) {
    c->die(std::move(err));
    return;
  }
  set_deadline(c, Clock::time_point::max());
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd_, nullptr);
  c->registered_ = false;
  c->die(std::move(err));
  conns_open_.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(c->fd_);  // may drop the last reference; c is dead after this
}

void Reactor::update_events(ReactorConn* c) {
  epoll_event ev{};
  ev.data.fd = c->fd_;
  ev.events = EPOLLIN | ((c->want_write_ || c->connecting_)
                             ? static_cast<std::uint32_t>(EPOLLOUT)
                             : 0u);
  ::epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd_, &ev);
}

void Reactor::set_deadline(ReactorConn* c, Clock::time_point tp) {
  bool was = c->deadline_ != Clock::time_point::max();
  bool armed = tp != Clock::time_point::max();
  c->deadline_ = tp;
  armed_deadlines_ += (armed ? 1 : 0) - (was ? 1 : 0);
}

void Reactor::scan_deadlines() {
  auto now = Clock::now();
  std::vector<ConnPtr> late;
  for (auto& [fd, c] : conns_) {
    if (c->deadline_ <= now) late.push_back(c);
  }
  for (auto& c : late) {
    teardown(c.get(), c->connecting_
                          ? Error{Errc::timeout, "connect timeout: " + c->peer_}
                          : Error{Errc::timeout,
                                  "mid-frame stall from " + c->peer_});
  }
}

// ---------------------------------------------------------------------------
// ReactorConn

ReactorConn::ReactorConn(std::shared_ptr<Reactor> reactor, int fd,
                         std::string peer, bool connecting)
    : reactor_(std::move(reactor)), fd_(fd), peer_(std::move(peer)) {
  connecting_ = connecting;
  if (!connecting) {
    MutexLock lock(mu_);
    connected_flag_ = true;
  }
}

ReactorConn::~ReactorConn() {
  // Sole owner by now (the reactor's reference is gone): release queued
  // file descriptors and the socket itself.
  {
    MutexLock lock(mu_);
    for (auto& ch : out_) {
      close_fd(ch.file_fd);
    }
    out_.clear();
  }
  close_fd(fd_);
}

Status ReactorConn::send_frame(Frame frame) {
  {
    UniqueLock lock(mu_);
    if (dead_) {
      return Error{Errc::unavailable, "send to " + peer_ + ": " + death_.message};
    }
    // Backpressure: wait for queued bytes to drop under the cap. The
    // reactor thread itself never waits (it is the one draining).
    while (out_bytes_ > kSendBufCap && !dead_ && !reactor_->on_this_thread()) {
      cv_.wait(lock);
    }
    if (dead_) {
      return Error{Errc::unavailable, "send to " + peer_ + ": " + death_.message};
    }
    OutChunk ch;
    if (!spare_heads_.empty()) {
      ch.head = std::move(spare_heads_.back());
      spare_heads_.pop_back();
    }
    if (frame.kind == Frame::Kind::json) {
      // Serialize straight into the recycled head buffer after a 5-byte
      // placeholder, then patch the header in place — no wire copy, no
      // per-frame allocation once the scratch has grown.
      ch.head.assign(5, '\0');
      frame.msg.dump_append(ch.head);
      std::uint32_t plen = static_cast<std::uint32_t>(ch.head.size() - 5);
      ch.head[0] = static_cast<char>(plen);
      ch.head[1] = static_cast<char>(plen >> 8);
      ch.head[2] = static_cast<char>(plen >> 16);
      ch.head[3] = static_cast<char>(plen >> 24);
      ch.head[4] = static_cast<char>(Frame::Kind::json);
    } else {
      std::uint64_t plen64 = 4ull + frame.tag.size() + frame.data.size();
      if (plen64 > kMaxFramePayload) {
        return Error{Errc::invalid_argument, "blob frame exceeds 512 MB"};
      }
      ch.head.clear();
      append_frame_header(ch.head, static_cast<std::uint32_t>(plen64),
                          Frame::Kind::blob);
      append_u32(ch.head, static_cast<std::uint32_t>(frame.tag.size()));
      ch.head += frame.tag;
      ch.body = std::move(frame.data);  // payload ships by reference: no copy
    }
    out_bytes_ += ch.head.size() + ch.body.size();
    out_.push_back(std::move(ch));
  }
  request_flush();
  return Status::success();
}

Status ReactorConn::send_file(const std::string& tag, const std::string& path,
                              std::uint64_t size) {
  std::uint64_t plen64 = 4ull + tag.size() + size;
  if (plen64 > kMaxFramePayload) {
    return Error{Errc::invalid_argument, "blob frame exceeds 512 MB"};
  }
  int ffd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (ffd < 0) return Error{Errc::io_error, errno_text("open " + path)};
  {
    UniqueLock lock(mu_);
    if (dead_) {
      close_fd(ffd);
      return Error{Errc::unavailable, "send to " + peer_ + ": " + death_.message};
    }
    while (out_bytes_ > kSendBufCap && !dead_ && !reactor_->on_this_thread()) {
      cv_.wait(lock);
    }
    if (dead_) {
      close_fd(ffd);
      return Error{Errc::unavailable, "send to " + peer_ + ": " + death_.message};
    }
    OutChunk ch;
    if (!spare_heads_.empty()) {
      ch.head = std::move(spare_heads_.back());
      spare_heads_.pop_back();
      ch.head.clear();
    }
    append_frame_header(ch.head, static_cast<std::uint32_t>(plen64),
                        Frame::Kind::blob);
    append_u32(ch.head, static_cast<std::uint32_t>(tag.size()));
    ch.head += tag;
    ch.file_fd = ffd;
    ch.file_off = 0;
    ch.file_left = size;
    out_bytes_ += ch.head.size() + static_cast<std::size_t>(size);
    out_.push_back(std::move(ch));
  }
  request_flush();
  return Status::success();
}

Result<Frame> ReactorConn::recv_frame(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  UniqueLock lock(mu_);
  for (;;) {
    if (!rx_.empty()) {
      Frame f = std::move(rx_.front());
      rx_.pop_front();
      return f;
    }
    if (dead_) return death_;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (!rx_.empty()) {
        Frame f = std::move(rx_.front());
        rx_.pop_front();
        return f;
      }
      if (dead_) return death_;
      return Error{Errc::timeout, "recv timeout from " + peer_};
    }
  }
}

void ReactorConn::set_receiver(std::function<void(Result<Frame>)> fn) {
  MutexLock lock(mu_);
  while (!rx_.empty()) {
    fn(std::move(rx_.front()));
    rx_.pop_front();
  }
  if (dead_ && !death_notified_) {
    death_notified_ = true;
    fn(death_);
  }
  receiver_ = std::move(fn);
}

void ReactorConn::set_io_timeout(std::chrono::milliseconds t) {
  io_timeout_ms_.store(t.count() > 0 ? t.count() : 60000,
                       std::memory_order_relaxed);
}

void ReactorConn::deliver(Frame f) {
  MutexLock lock(mu_);
  if (dead_) return;
  if (receiver_) {
    receiver_(std::move(f));
    return;
  }
  rx_.push_back(std::move(f));
  cv_.notify_all();
}

void ReactorConn::deliver_batch(std::vector<Frame>& frames) {
  if (frames.empty()) return;
  {
    MutexLock lock(mu_);
    if (!dead_) {
      if (receiver_) {
        for (Frame& f : frames) receiver_(std::move(f));
      } else {
        for (Frame& f : frames) rx_.push_back(std::move(f));
        cv_.notify_all();
      }
    }
  }
  frames.clear();
}

void ReactorConn::die(Error err) {
  MutexLock lock(mu_);
  if (!dead_) {
    dead_ = true;
    death_ = std::move(err);
  }
  for (auto& ch : out_) {
    close_fd(ch.file_fd);
  }
  out_.clear();
  out_bytes_ = 0;
  if (receiver_ && !death_notified_) {
    death_notified_ = true;
    receiver_(death_);
  }
  cv_.notify_all();
}

void ReactorConn::close() {
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    if (!dead_) {
      dead_ = true;
      death_ = Error{Errc::unavailable, "closed: " + peer_};
      for (auto& ch : out_) {
        close_fd(ch.file_fd);
      }
      out_.clear();
      out_bytes_ = 0;
      if (receiver_ && !death_notified_) {
        death_notified_ = true;
        receiver_(death_);
      }
    }
    cv_.notify_all();
  }
  // Wake the reactor's read side: it observes EOF/reset and deregisters.
  // The fd itself stays open until destruction so no in-flight reactor
  // operation can race a recycled descriptor number.
  shutdown_fd(fd_);
}

Status ReactorConn::await_connected(std::chrono::milliseconds timeout) {
  // The reactor enforces the real deadline (teardown with Errc::timeout);
  // the extra slack here is only a backstop against a wedged loop thread.
  const auto deadline = std::chrono::steady_clock::now() + timeout +
                        std::chrono::milliseconds(2000);
  UniqueLock lock(mu_);
  while (!connected_flag_ && !dead_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  if (connected_flag_) return Status::success();
  if (dead_) return death_;
  return Error{Errc::timeout, "connect timeout: " + peer_};
}

void ReactorConn::release() {
  {
    MutexLock lock(mu_);
    if (released_) return;
  }
  ConnPtr self = shared_from_this();
  if (reactor_->on_this_thread()) {
    reactor_->remove_now(self);
    return;
  }
  reactor_->enqueue(Reactor::Op{Reactor::Op::Kind::del_conn, self, nullptr});
  UniqueLock lock(mu_);
  while (!released_) cv_.wait(lock);
}

void ReactorConn::request_flush() {
  if (flush_queued_.exchange(true, std::memory_order_acq_rel)) return;
  reactor_->enqueue(
      Reactor::Op{Reactor::Op::Kind::flush, shared_from_this(), nullptr});
}

// ---------------------------------------------------------------------------
// ReactorListener

ReactorListener::ReactorListener(std::shared_ptr<Reactor> reactor, int fd,
                                 std::string address)
    : reactor_(std::move(reactor)), fd_(fd), address_(std::move(address)) {}

ReactorListener::~ReactorListener() {
  close();
  if (reactor_->on_this_thread()) {
    reactor_->remove_listener_now(this);
  } else {
    reactor_->enqueue(
        Reactor::Op{Reactor::Op::Kind::del_listener, nullptr, this});
    UniqueLock lock(mu_);
    while (!released_) cv_.wait(lock);
  }
  ::close(fd_);
}

Result<ConnPtr> ReactorListener::accept(std::chrono::milliseconds timeout) {
  if (closed_.load(std::memory_order_relaxed)) {
    return Error{Errc::unavailable, "listener closed"};
  }
  auto c = pending_.pop(timeout);
  if (!c) {
    if (closed_.load(std::memory_order_relaxed) || pending_.closed()) {
      return Error{Errc::unavailable, "listener closed"};
    }
    return Error{Errc::timeout, "accept timeout"};
  }
  return std::move(*c);
}

void ReactorListener::close() {
  if (closed_.exchange(true)) return;
  shutdown_fd(fd_);
  pending_.close();
  // Tear down accepted-but-unclaimed connections; nobody will own them.
  while (auto c = pending_.try_pop()) {
    (*c)->close();
    (*c)->reactor_->enqueue(
        Reactor::Op{Reactor::Op::Kind::del_conn, *c, nullptr});
  }
}

// ---------------------------------------------------------------------------
// ReactorPool

ReactorPool& ReactorPool::instance() {
  static ReactorPool pool;
  return pool;
}

ReactorPool::ReactorPool() {
  int shards = 1;
  if (const char* env = std::getenv("VINE_REACTOR_SHARDS")) {
    shards = std::atoi(env);
    if (shards < 1) shards = 1;
    if (shards > 16) shards = 16;
  }
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_shared<Reactor>());
  }
}

std::shared_ptr<Reactor> ReactorPool::next_shard() {
  std::uint32_t i = rr_.fetch_add(1, std::memory_order_relaxed);
  return shards_[i % shards_.size()];
}

ConnPtr ReactorPool::adopt(int fd, std::string peer) {
  auto shard = next_shard();
  auto c = std::shared_ptr<ReactorConn>(new ReactorConn(
      shard, fd, std::move(peer), /*connecting=*/false));
  shard->enqueue(Reactor::Op{Reactor::Op::Kind::add_conn, c, nullptr});
  return c;
}

ConnPtr ReactorPool::adopt_connecting(int fd, std::string peer,
                                      std::chrono::milliseconds timeout) {
  auto shard = next_shard();
  auto c = std::shared_ptr<ReactorConn>(new ReactorConn(
      shard, fd, std::move(peer), /*connecting=*/true));
  c->connect_timeout_ = timeout;
  shard->enqueue(Reactor::Op{Reactor::Op::Kind::add_conn, c, nullptr});
  return c;
}

std::shared_ptr<ReactorListener> ReactorPool::listen(int fd,
                                                     std::string address) {
  auto shard = next_shard();
  std::shared_ptr<ReactorListener> l(new ReactorListener(
      shard, fd, std::move(address)));
  shard->enqueue(
      Reactor::Op{Reactor::Op::Kind::add_listener, nullptr, l.get()});
  return l;
}

ReactorStats ReactorPool::stats() const {
  ReactorStats total;
  for (const auto& shard : shards_) {
    ReactorStats s = shard->snapshot();
    total.wakeups += s.wakeups;
    total.frames_in += s.frames_in;
    total.frames_out += s.frames_out;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.sendfile_bytes += s.sendfile_bytes;
    total.writev_calls += s.writev_calls;
    total.accepts += s.accepts;
    total.conns_open += s.conns_open;
  }
  return total;
}

}  // namespace vine
