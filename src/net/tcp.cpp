#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/mutex.hpp"
#include "common/strings.hpp"

namespace vine {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint8_t>(p[0]) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

/// Wait until fd is readable; Errc::timeout / unavailable on failure.
Status wait_readable(int fd, std::chrono::milliseconds timeout) {
  pollfd pfd{fd, POLLIN, 0};
  int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (rc == 0) return Error{Errc::timeout, "poll timeout"};
  if (rc < 0) return Error{Errc::io_error, errno_text("poll")};
  if (pfd.revents & (POLLERR | POLLNVAL)) {
    return Error{Errc::unavailable, "socket error"};
  }
  return Status::success();
}

/// Frame payloads above this are rejected as corrupt/hostile (512 MB covers
/// the largest assets in the paper's workloads).
constexpr std::uint32_t kMaxFramePayload = 512u * 1024 * 1024;

class TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~TcpEndpoint() override {
    close();
    // The descriptor is released only here: by destruction time no other
    // thread holds a reference, so nobody can be mid-recv()/send() on it.
    ::close(fd_);
  }

  Status send(Frame frame) override {
    std::string wire = encode_frame(frame);
    MutexLock lock(send_mutex_);
    std::size_t sent = 0;
    while (sent < wire.size()) {
      ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Error{Errc::unavailable, errno_text("send to " + peer_)};
      }
      sent += static_cast<std::size_t>(n);
    }
    return Status::success();
  }

  Result<Frame> recv(std::chrono::milliseconds timeout) override {
    char header[5];
    VINE_TRY_STATUS(read_exact(header, sizeof header, timeout));
    std::uint32_t len = get_u32(header);
    char kind = header[4];
    if (len > kMaxFramePayload) {
      return Error{Errc::protocol_error, "oversized frame from " + peer_};
    }
    std::string payload(len, '\0');
    if (len > 0) {
      // Once a header arrived the rest must follow promptly; the idle
      // window is generous by default so huge blobs on slow links still
      // complete, and configurable so fetch threads facing a stalled peer
      // time out fast instead of wedging.
      VINE_TRY_STATUS(read_exact(
          payload.data(), len,
          std::chrono::milliseconds(io_timeout_ms_.load(std::memory_order_relaxed))));
    }
    return decode_frame_payload(kind, std::move(payload));
  }

  void set_io_timeout(std::chrono::milliseconds t) override {
    io_timeout_ms_.store(t.count() > 0 ? t.count() : 60000,
                         std::memory_order_relaxed);
  }

  void close() override {
    // Poison the connection but keep the descriptor open: another thread
    // blocked in recv()/send() on this fd would race ::close() and could
    // end up operating on a recycled descriptor number. shutdown()
    // unblocks those calls (recv returns 0, send fails with EPIPE); the
    // fd itself is released in the destructor, after all users are gone.
    if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
  }

  std::string peer_name() const override { return peer_; }

 private:
  /// Read exactly n bytes, with `timeout` applied per chunk. Every chunk —
  /// including the very first payload byte after a header — waits via
  /// poll() first: a peer that stalls at any frame offset surfaces
  /// Errc::timeout instead of wedging the reader in a blocking recv.
  Status read_exact(char* buf, std::size_t n,
                    std::chrono::milliseconds timeout) {
    std::size_t got = 0;
    while (got < n) {
      if (closed_.load()) return Error{Errc::unavailable, "closed: " + peer_};
      VINE_TRY_STATUS(wait_readable(fd_, timeout));
      ssize_t r = ::recv(fd_, buf + got, n - got, 0);
      if (r == 0) return Error{Errc::unavailable, "peer closed: " + peer_};
      if (r < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return Error{Errc::unavailable, errno_text("recv from " + peer_)};
      }
      got += static_cast<std::size_t>(r);
    }
    return Status::success();
  }

  const int fd_;
  // Mid-frame idle window (see set_io_timeout); atomic because the owner
  // may adjust it while a reader thread is blocked in recv().
  std::atomic<long long> io_timeout_ms_{60000};
  // Set by close(); the fd stays open (see close()) so in-flight reads and
  // writes never touch a recycled descriptor.
  std::atomic<bool> closed_{false};
  std::string peer_;
  // Serializes send() so a length-prefixed frame is written atomically even
  // when multiple threads share the endpoint; recv stays lock-free (single
  // consumer). Held across the blocking ::send by design — that is the
  // frame-atomicity contract (vine_analyze allowlists it).
  Mutex send_mutex_{lock_rank::Rank::endpoint_send};
};

class TcpListener final : public Listener {
 public:
  TcpListener(int fd, std::string address) : fd_(fd), address_(std::move(address)) {}

  ~TcpListener() override {
    close();
    // Released here for the same reason as TcpEndpoint: no thread can be
    // blocked in accept() once the owner destroys the listener.
    ::close(fd_);
  }

  Result<std::unique_ptr<Endpoint>> accept(std::chrono::milliseconds timeout) override {
    if (closed_.load()) return Error{Errc::unavailable, "listener closed"};
    VINE_TRY_STATUS(wait_readable(fd_, timeout));
    if (closed_.load()) return Error{Errc::unavailable, "listener closed"};
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    int cfd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (cfd < 0) return Error{Errc::io_error, errno_text("accept")};
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
    std::string peer = std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
    return std::unique_ptr<Endpoint>(new TcpEndpoint(cfd, peer));
  }

  std::string address() const override { return address_; }

  void close() override {
    // shutdown() wakes any thread blocked in poll()/accept() on the
    // listening socket; the fd is kept open until the destructor so a
    // concurrent accept() never races a recycled descriptor.
    if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  const int fd_;
  // Set by close(); the fd stays open until the destructor (see close()).
  std::atomic<bool> closed_{false};
  std::string address_;
};

}  // namespace

Result<std::unique_ptr<Listener>> tcp_listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{Errc::io_error, errno_text("socket")};
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return Error{Errc::io_error, errno_text("bind")};
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return Error{Errc::io_error, errno_text("listen")};
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Error{Errc::io_error, errno_text("getsockname")};
  }
  std::string address = "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  return std::unique_ptr<Listener>(new TcpListener(fd, address));
}

Result<std::unique_ptr<Endpoint>> tcp_connect(const std::string& address,
                                              std::chrono::milliseconds timeout) {
  auto parts = split(address, ':');
  if (parts.size() != 2) {
    return Error{Errc::invalid_argument, "address must be host:port, got " + address};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, parts[0].c_str(), &addr.sin_addr) != 1) {
    return Error{Errc::invalid_argument, "bad IPv4 address: " + parts[0]};
  }
  int port = std::atoi(parts[1].c_str());
  if (port <= 0 || port > 65535) {
    return Error{Errc::invalid_argument, "bad port in " + address};
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{Errc::io_error, errno_text("socket")};

  // Connect with a timeout using a temporarily non-blocking socket.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Error{Errc::unavailable, errno_text("connect " + address)};
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int prc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (prc <= 0) {
      ::close(fd);
      return Error{Errc::timeout, "connect timeout: " + address};
    }
    int err = 0;
    socklen_t elen = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
    if (err != 0) {
      ::close(fd);
      return Error{Errc::unavailable,
                   "connect " + address + ": " + std::strerror(err)};
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return std::unique_ptr<Endpoint>(new TcpEndpoint(fd, address));
}

}  // namespace vine
