// Real TCP transport, implemented as thin adapters over the epoll reactor
// (net/reactor.*): this file only creates/binds/connects sockets and maps
// the Endpoint/Listener interface onto ReactorConn/ReactorListener. All
// socket I/O — reads, vectored writes, sendfile, accepts, timeouts — runs
// on the reactor threads; nothing here ever blocks in a socket syscall.
#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.hpp"
#include "net/reactor.hpp"

namespace vine {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

class TcpEndpoint final : public Endpoint {
 public:
  explicit TcpEndpoint(ConnPtr conn) : conn_(std::move(conn)) {}

  ~TcpEndpoint() override {
    // Poison, then synchronously deregister: after release() the reactor
    // holds no reference, and dropping conn_ closes the descriptor.
    conn_->close();
    conn_->release();
  }

  Status send(Frame frame) override { return conn_->send_frame(std::move(frame)); }

  Result<Frame> recv(std::chrono::milliseconds timeout) override {
    return conn_->recv_frame(timeout);
  }

  bool set_receiver(std::function<void(Result<Frame>)> fn) override {
    conn_->set_receiver(std::move(fn));
    return true;
  }

  Status send_blob_file(const std::string& tag, const std::string& path,
                        std::uint64_t size) override {
    return conn_->send_file(tag, path, size);
  }

  void set_io_timeout(std::chrono::milliseconds t) override {
    conn_->set_io_timeout(t);
  }

  void close() override { conn_->close(); }

  std::string peer_name() const override { return conn_->peer_name(); }

 private:
  const ConnPtr conn_;
};

class TcpListener final : public Listener {
 public:
  explicit TcpListener(std::shared_ptr<ReactorListener> lst)
      : lst_(std::move(lst)) {}

  ~TcpListener() override { lst_->close(); }

  Result<std::unique_ptr<Endpoint>> accept(std::chrono::milliseconds timeout) override {
    VINE_TRY(ConnPtr c, lst_->accept(timeout));
    return std::unique_ptr<Endpoint>(new TcpEndpoint(std::move(c)));
  }

  std::string address() const override { return lst_->address(); }

  void close() override { lst_->close(); }

 private:
  const std::shared_ptr<ReactorListener> lst_;
};

}  // namespace

Result<std::unique_ptr<Listener>> tcp_listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error{Errc::io_error, errno_text("socket")};
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return Error{Errc::io_error, errno_text("bind")};
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return Error{Errc::io_error, errno_text("listen")};
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Error{Errc::io_error, errno_text("getsockname")};
  }
  std::string address = "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  auto lst = ReactorPool::instance().listen(fd, address);
  return std::unique_ptr<Listener>(new TcpListener(std::move(lst)));
}

Result<std::unique_ptr<Endpoint>> tcp_connect(const std::string& address,
                                              std::chrono::milliseconds timeout) {
  auto parts = split(address, ':');
  if (parts.size() != 2) {
    return Error{Errc::invalid_argument, "address must be host:port, got " + address};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, parts[0].c_str(), &addr.sin_addr) != 1) {
    return Error{Errc::invalid_argument, "bad IPv4 address: " + parts[0]};
  }
  int port = std::atoi(parts[1].c_str());
  if (port <= 0 || port > 65535) {
    return Error{Errc::invalid_argument, "bad port in " + address};
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error{Errc::io_error, errno_text("socket")};
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Error{Errc::unavailable, errno_text("connect " + address)};
  }
  ConnPtr conn =
      rc == 0 ? ReactorPool::instance().adopt(fd, address)
              : ReactorPool::instance().adopt_connecting(fd, address, timeout);
  Status st = conn->await_connected(timeout);
  if (!st.ok()) {
    conn->close();
    conn->release();
    return st.error();
  }
  return std::unique_ptr<Endpoint>(new TcpEndpoint(std::move(conn)));
}

}  // namespace vine
