// Wire frames and the Endpoint/Listener transport abstraction.
//
// A frame is either a JSON control message or a tagged binary blob (file
// payloads). On TCP the encoding is:
//   u32  payload length (LE)      -- excludes this 5-byte header
//   u8   kind: 'J' json | 'B' blob
//   for 'J': payload = UTF-8 JSON text
//   for 'B': payload = u32 tag length, tag bytes, blob bytes
// In-process channels pass Frame objects directly (no serialization).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "json/json.hpp"

namespace vine {

/// One unit of communication between manager, workers, and peers.
struct Frame {
  enum class Kind : char { json = 'J', blob = 'B' };
  Kind kind = Kind::json;
  json::Value msg;   ///< valid when kind == json
  std::string tag;   ///< blob identity (cache name); valid when kind == blob
  std::string data;  ///< blob bytes; valid when kind == blob

  static Frame make_json(json::Value v) {
    Frame f;
    f.kind = Kind::json;
    f.msg = std::move(v);
    return f;
  }
  static Frame make_blob(std::string tag, std::string data) {
    Frame f;
    f.kind = Kind::blob;
    f.tag = std::move(tag);
    f.data = std::move(data);
    return f;
  }
};

/// Serialize a frame to the TCP wire format (header + payload).
std::string encode_frame(const Frame& frame);

/// Decode one frame from a complete payload (header already stripped).
Result<Frame> decode_frame_payload(char kind, std::string payload);

/// Zero-intermediate-copy variant: decodes directly out of the caller's
/// buffer (the reactor's batched inbound buffer). Blob bytes are copied
/// exactly once, into the returned Frame.
Result<Frame> decode_frame_view(char kind, std::string_view payload);

/// Append a little-endian u32 to `out` (the wire integer encoding).
void append_u32(std::string& out, std::uint32_t v);

/// Read a little-endian u32 from `p` (must have 4 readable bytes).
std::uint32_t read_u32(const char* p);

/// Append the 5-byte frame header (payload length + kind) to `out`. The
/// reactor builds header+tag into one reused scratch buffer and hands the
/// payload to writev/sendfile separately, so no contiguous wire copy of the
/// whole frame is ever made.
void append_frame_header(std::string& out, std::uint32_t payload_len,
                         Frame::Kind kind);

/// Frame payloads above this are rejected as corrupt/hostile (512 MB covers
/// the largest assets in the paper's workloads).
inline constexpr std::uint32_t kMaxFramePayload = 512u * 1024 * 1024;

/// A bidirectional, message-oriented connection. Thread contract: send()
/// is fully thread safe (frames from concurrent senders interleave at
/// frame granularity, never within one); recv() must be called from one
/// thread at a time.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Send a frame; blocks until handed to the transport.
  virtual Status send(Frame frame) = 0;

  /// Receive the next frame, waiting up to `timeout`.
  /// Errc::timeout when nothing arrived; Errc::unavailable when the peer
  /// closed the connection.
  virtual Result<Frame> recv(std::chrono::milliseconds timeout) = 0;

  /// Close the connection; unblocks any receiver with Errc::unavailable.
  virtual void close() = 0;

  /// Stable printable identity of the remote end (address or channel name).
  virtual std::string peer_name() const = 0;

  /// Bound on how long a transport may wait for the *remainder* of a frame
  /// once its first bytes arrived. A peer that goes dead-silent mid-frame
  /// then surfaces Errc::timeout within this window instead of wedging the
  /// receiving thread. Transports without a mid-frame window (in-process
  /// channels deliver whole frames) ignore it.
  virtual void set_io_timeout(std::chrono::milliseconds) {}

  /// Push-mode delivery: install `fn` to be invoked for every inbound frame
  /// (and once, finally, with the terminal error) instead of pulling frames
  /// via recv(). Frames already buffered are drained to `fn` in order before
  /// it returns. Returns false on transports without push delivery (the
  /// in-process channel); callers must then fall back to a recv() thread.
  /// `fn` runs on the transport's event thread and must not block.
  virtual bool set_receiver(std::function<void(Result<Frame>)> fn) {
    (void)fn;
    return false;
  }

  /// Send a blob frame whose payload is the contents of `path` (`size`
  /// bytes). The TCP transport streams the file zero-copy via sendfile;
  /// the base implementation reads the file and falls back to send_blob.
  /// The on-wire bytes are identical either way.
  virtual Status send_blob_file(const std::string& tag, const std::string& path,
                                std::uint64_t size);

  // Convenience wrappers.
  Status send_json(json::Value v) { return send(Frame::make_json(std::move(v))); }
  Status send_blob(std::string tag, std::string data) {
    return send(Frame::make_blob(std::move(tag), std::move(data)));
  }
};

/// Accepts incoming connections (the manager's worker port and each
/// worker's peer-transfer port).
class Listener {
 public:
  virtual ~Listener() = default;

  /// Wait up to `timeout` for a connection. Errc::timeout when none.
  virtual Result<std::unique_ptr<Endpoint>> accept(std::chrono::milliseconds timeout) = 0;

  /// Address peers can connect to ("127.0.0.1:9123" or "chan:worker-3").
  virtual std::string address() const = 0;

  virtual void close() = 0;
};

/// Connects to a listener address of either transport: "chan:NAME" routes
/// through the in-process fabric, anything else is host:port TCP.
Result<std::unique_ptr<Endpoint>> connect_to(const std::string& address,
                                             std::chrono::milliseconds timeout);

}  // namespace vine
