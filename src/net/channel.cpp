#include "net/channel.hpp"

namespace vine {

namespace {

/// One direction of an in-process connection.
using FrameQueue = MsgQueue<Frame>;

/// An endpoint holding a send queue (peer's inbox) and a recv queue (ours).
class ChannelEndpoint final : public Endpoint {
 public:
  ChannelEndpoint(std::shared_ptr<FrameQueue> send_q,
                  std::shared_ptr<FrameQueue> recv_q, std::string peer)
      : send_q_(std::move(send_q)),
        recv_q_(std::move(recv_q)),
        peer_(std::move(peer)) {}

  ~ChannelEndpoint() override { close(); }

  Status send(Frame frame) override {
    if (!send_q_->push(std::move(frame))) {
      return Error{Errc::unavailable, "peer closed: " + peer_};
    }
    return Status::success();
  }

  Result<Frame> recv(std::chrono::milliseconds timeout) override {
    auto f = recv_q_->pop(timeout);
    if (!f) {
      if (recv_q_->closed()) {
        return Error{Errc::unavailable, "connection closed: " + peer_};
      }
      return Error{Errc::timeout, "recv timeout from " + peer_};
    }
    return std::move(*f);
  }

  void close() override {
    // Closing our inbox unblocks our receiver; closing the peer's inbox
    // makes their recv report unavailable once drained.
    recv_q_->close();
    send_q_->close();
  }

  std::string peer_name() const override { return peer_; }

 private:
  std::shared_ptr<FrameQueue> send_q_;
  std::shared_ptr<FrameQueue> recv_q_;
  std::string peer_;
};

}  // namespace

std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>> make_channel_pair(
    const std::string& a_name, const std::string& b_name) {
  auto a_to_b = std::make_shared<FrameQueue>();
  auto b_to_a = std::make_shared<FrameQueue>();
  auto a = std::make_unique<ChannelEndpoint>(a_to_b, b_to_a, b_name);
  auto b = std::make_unique<ChannelEndpoint>(b_to_a, a_to_b, a_name);
  return {std::move(a), std::move(b)};
}

/// A queue of endpoints waiting to be accept()ed.
struct ChannelFabric::PendingQueue {
  MsgQueue<std::unique_ptr<Endpoint>> pending;
  std::string address;
};

namespace {

class ChannelListener final : public Listener {
 public:
  ChannelListener(std::shared_ptr<ChannelFabric::PendingQueue> q, std::string address)
      : q_(std::move(q)), address_(std::move(address)) {}

  ~ChannelListener() override { close(); }

  Result<std::unique_ptr<Endpoint>> accept(std::chrono::milliseconds timeout) override {
    auto ep = q_->pending.pop(timeout);
    if (!ep) {
      if (q_->pending.closed()) {
        return Error{Errc::unavailable, "listener closed: " + address_};
      }
      return Error{Errc::timeout, "accept timeout on " + address_};
    }
    return std::move(*ep);
  }

  std::string address() const override { return address_; }

  void close() override { q_->pending.close(); }

 private:
  std::shared_ptr<ChannelFabric::PendingQueue> q_;
  std::string address_;
};

}  // namespace

ChannelFabric& ChannelFabric::instance() {
  static ChannelFabric fabric;
  return fabric;
}

Result<std::unique_ptr<Listener>> ChannelFabric::listen(const std::string& name) {
  std::string address = "chan:" + name;
  MutexLock lock(mutex_);
  auto it = listeners_.find(address);
  if (it != listeners_.end() && !it->second->pending.closed()) {
    return Error{Errc::already_exists, "channel name taken: " + address};
  }
  auto q = std::make_shared<PendingQueue>();
  q->address = address;
  listeners_[address] = q;
  return std::unique_ptr<Listener>(new ChannelListener(q, address));
}

Result<std::unique_ptr<Endpoint>> ChannelFabric::connect(
    const std::string& address, std::chrono::milliseconds /*timeout*/) {
  std::shared_ptr<PendingQueue> q;
  {
    MutexLock lock(mutex_);
    auto it = listeners_.find(address);
    if (it == listeners_.end() || it->second->pending.closed()) {
      return Error{Errc::unavailable, "no such channel listener: " + address};
    }
    q = it->second;
  }
  auto [client, server] = make_channel_pair("client-of-" + address, address);
  if (!q->pending.push(std::move(server))) {
    return Error{Errc::unavailable, "listener closed: " + address};
  }
  return std::move(client);
}

}  // namespace vine
