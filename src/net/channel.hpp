// In-process transport. A ChannelEndpoint pair shares two frame queues; a
// ChannelListener registers a name in the process-global ChannelFabric so
// "chan:NAME" addresses resolve, letting a whole cluster (manager, workers,
// peer transfers) run inside a single test process with the exact same code
// paths as the TCP deployment.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/mutex.hpp"
#include "net/frame.hpp"
#include "net/msg_queue.hpp"

namespace vine {

/// Create a connected endpoint pair (two ends of one in-process duplex
/// connection). `a_name`/`b_name` become each end's peer_name.
std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>> make_channel_pair(
    const std::string& a_name, const std::string& b_name);

/// Process-global registry of channel listeners, keyed by "chan:NAME".
class ChannelFabric {
 public:
  static ChannelFabric& instance();

  /// Create a listener bound to "chan:NAME". Fails if the name is taken.
  Result<std::unique_ptr<Listener>> listen(const std::string& name);

  /// Connect to a registered listener.
  Result<std::unique_ptr<Endpoint>> connect(const std::string& address,
                                            std::chrono::milliseconds timeout);

  /// Implementation detail shared with the listener (public because the
  /// listener lives in an unnamed namespace in the .cpp).
  struct PendingQueue;

 private:
  // Guards listeners_ (listen/connect/close arrive from arbitrary threads).
  Mutex mutex_{lock_rank::Rank::channel_fabric};
  std::map<std::string, std::shared_ptr<PendingQueue>> listeners_
      VINE_GUARDED_BY(mutex_);
};

}  // namespace vine
