// The epoll reactor: one thread (optionally N sharded) owning every TCP
// socket in the process — manager worker-port connections, worker control
// links, and worker↔worker peer-transfer streams.
//
// Architecture (see DESIGN.md "Data plane"):
//
//   * Read side. Each connection's inbound state (byte buffer, frame parse
//     offsets, progress deadline) is confined to the reactor thread — no
//     lock. Per wakeup the reactor drains the socket into the buffer and
//     decodes every complete frame it holds (batched decode), delivering
//     each either to an installed receiver callback or to the connection's
//     rx queue for pull-mode recv().
//
//   * Write side. send_frame() never touches the socket: it encodes the
//     5-byte header (+ blob tag prefix) into a recycled per-connection
//     scratch buffer, enqueues header/payload as separate spans, and kicks
//     the reactor via eventfd. The reactor coalesces queued spans across
//     frames into one writev — the old per-frame contiguous `wire` copy and
//     its per-frame allocation are gone. File-backed spans are streamed
//     with sendfile (pread+writev fallback behind VINE_DISABLE_SENDFILE),
//     so a cached blob served to a peer never passes through userspace.
//
//   * Liveness. A connection with a partially received frame carries a
//     progress deadline (set_io_timeout window): a peer that stalls
//     mid-frame is killed with Errc::timeout instead of wedging anything.
//     Connect timeouts ride the same deadline scan.
//
// Lock order: Reactor::ops_mu_ (rank net_reactor) < ReactorConn::mu_ (rank
// endpoint_send) < MsgQueue internals (rank msg_queue). Senders lock the
// two former sequentially, never nested. Frame delivery runs under the
// connection mutex and may push into a MsgQueue (ascending ranks).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/frame.hpp"
#include "net/msg_queue.hpp"

namespace vine {

class Reactor;
class ReactorConn;
class ReactorListener;
using ConnPtr = std::shared_ptr<ReactorConn>;

/// Aggregate data-plane counters, summed across shards by
/// ReactorPool::stats(). Monotone; sampled by the manager's metrics gauges
/// and by bench/micro_net.
struct ReactorStats {
  std::int64_t wakeups = 0;        ///< epoll_wait returns
  std::int64_t frames_in = 0;      ///< complete frames decoded
  std::int64_t frames_out = 0;     ///< frames fully written
  std::int64_t bytes_in = 0;       ///< payload+header bytes read
  std::int64_t bytes_out = 0;      ///< bytes written (writev + sendfile)
  std::int64_t sendfile_bytes = 0; ///< bytes_out moved by sendfile
  std::int64_t writev_calls = 0;   ///< writev syscalls issued
  std::int64_t accepts = 0;        ///< connections accepted
  std::int64_t conns_open = 0;     ///< currently registered connections
};

/// Whether blob-file sends use sendfile. Compiled to false under
/// VINE_DISABLE_SENDFILE; togglable at runtime so tests exercise the
/// pread+writev fallback on any build. The wire bytes are identical.
bool sendfile_enabled();
void set_sendfile_enabled(bool on);

/// One TCP connection owned by a Reactor. App threads use the send/recv
/// API; the reactor thread runs the read state machine and all socket I/O.
/// Obtain via ReactorPool (adopt/connect/listener accept), never directly.
class ReactorConn : public std::enable_shared_from_this<ReactorConn> {
 public:
  ~ReactorConn();
  ReactorConn(const ReactorConn&) = delete;
  ReactorConn& operator=(const ReactorConn&) = delete;

  /// Enqueue a frame for transmission; returns once queued (bounded by the
  /// backpressure cap), not once written. Errc::unavailable after death.
  Status send_frame(Frame frame);

  /// Enqueue a blob frame streaming `size` bytes from `path` via sendfile.
  Status send_file(const std::string& tag, const std::string& path,
                   std::uint64_t size);

  /// Pull-mode receive (single consumer). Errc::timeout when nothing
  /// arrived in `timeout`; otherwise the frame or the terminal error.
  Result<Frame> recv_frame(std::chrono::milliseconds timeout);

  /// Switch to push-mode delivery (see Endpoint::set_receiver).
  void set_receiver(std::function<void(Result<Frame>)> fn);

  /// Mid-frame progress window (see Endpoint::set_io_timeout).
  void set_io_timeout(std::chrono::milliseconds t);

  /// Poison the connection: local waiters unblock with Errc::unavailable
  /// and the reactor tears the socket down. Idempotent.
  void close();

  /// Block until the non-blocking connect completes (or the connection
  /// dies: refused / timeout). Only meaningful for connect()ed conns.
  Status await_connected(std::chrono::milliseconds timeout);

  /// Synchronously deregister from the reactor: after return the reactor
  /// holds no reference and will touch neither the object nor the fd.
  /// Must be called by the owner before releasing its ConnPtr.
  void release();

  const std::string& peer_name() const { return peer_; }

 private:
  friend class Reactor;
  friend class ReactorListener;
  friend class ReactorPool;
  ReactorConn(std::shared_ptr<Reactor> reactor, int fd, std::string peer,
              bool connecting);

  /// Deliver a decoded frame (reactor thread).
  void deliver(Frame f);

  /// Deliver a batch of decoded frames under one lock acquisition
  /// (reactor thread); consumes and clears `frames`.
  void deliver_batch(std::vector<Frame>& frames);

  /// Record the terminal error and wake/notify everyone. Idempotent; called
  /// by the reactor on teardown and by close() locally.
  void die(Error err);

  /// Ask the reactor to flush this conn's write queue (any thread).
  void request_flush();

  // --- immutable after construction ---
  const std::shared_ptr<Reactor> reactor_;
  const int fd_;
  const std::string peer_;

  // --- reactor-thread-confined read/connect state (no lock) ---
  std::string rbuf_;            ///< unparsed inbound bytes
  std::size_t rbuf_off_ = 0;    ///< consumed prefix of rbuf_
  bool connecting_ = false;     ///< connect() still in flight
  bool want_write_ = false;     ///< EPOLLOUT currently armed
  bool registered_ = false;     ///< present in Reactor::conns_
  /// Deadline for mid-frame progress / connect completion; time_point::max()
  /// when inactive. Scanned by the reactor tick (armed-count gated).
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
  /// Initial connect window, consumed when the reactor registers the conn.
  std::chrono::milliseconds connect_timeout_{0};

  // --- cross-thread state ---
  /// Mid-frame idle window; read by the reactor thread when arming
  /// deadline_, written by set_io_timeout from any thread.
  std::atomic<std::int64_t> io_timeout_ms_{60000};
  /// Set once this conn is queued on the reactor's flush list, cleared when
  /// the reactor picks it up; collapses N sends into one list entry.
  std::atomic<bool> flush_queued_{false};

  /// One span of outbound bytes: an owned head buffer (header + json text,
  /// or header + tag prefix), an owned body (blob bytes), and/or a file
  /// range streamed by sendfile. Offsets track partial writes.
  struct OutChunk {
    std::string head;
    std::size_t head_off = 0;
    std::string body;
    std::size_t body_off = 0;
    int file_fd = -1;
    std::uint64_t file_off = 0;
    std::uint64_t file_left = 0;
  };

  // Guards the cross-thread half of the connection: the write queue,
  // inbound frame queue, receiver callback, and lifecycle flags below.
  // Senders hold it to enqueue; the reactor thread holds it in
  // flush_writes and while delivering frames. cv_ signals rx_ arrivals,
  // backpressure headroom, connect completion, and release.
  mutable Mutex mu_{lock_rank::Rank::endpoint_send};
  CondVar cv_;
  std::deque<OutChunk> out_ VINE_GUARDED_BY(mu_);
  std::size_t out_bytes_ VINE_GUARDED_BY(mu_) = 0;
  /// Recycled head buffers (capacity reuse kills the per-frame allocation).
  std::vector<std::string> spare_heads_ VINE_GUARDED_BY(mu_);
  /// Frames decoded before a receiver was installed (pull mode).
  std::deque<Frame> rx_ VINE_GUARDED_BY(mu_);
  std::function<void(Result<Frame>)> receiver_ VINE_GUARDED_BY(mu_);
  bool connected_flag_ VINE_GUARDED_BY(mu_) = false;
  bool dead_ VINE_GUARDED_BY(mu_) = false;   ///< terminal error recorded
  Error death_ VINE_GUARDED_BY(mu_);         ///< valid once dead_
  bool death_notified_ VINE_GUARDED_BY(mu_) = false; ///< receiver_ told
  bool closed_ VINE_GUARDED_BY(mu_) = false; ///< close() called locally
  bool released_ VINE_GUARDED_BY(mu_) = false; ///< reactor dropped its ref
};

/// A non-blocking listening socket owned by a Reactor. Accepted connections
/// are registered (round-robin across shards) and queued for accept().
class ReactorListener {
 public:
  ~ReactorListener();
  ReactorListener(const ReactorListener&) = delete;
  ReactorListener& operator=(const ReactorListener&) = delete;

  /// Wait up to `timeout` for an accepted connection. Errc::timeout when
  /// none; Errc::unavailable once closed.
  Result<ConnPtr> accept(std::chrono::milliseconds timeout);

  /// Stop accepting; pending queued connections are torn down.
  void close();

  const std::string& address() const { return address_; }

 private:
  friend class Reactor;
  friend class ReactorPool;
  ReactorListener(std::shared_ptr<Reactor> reactor, int fd,
                  std::string address);

  const std::shared_ptr<Reactor> reactor_;
  const int fd_;
  const std::string address_;
  bool registered_ = false;  ///< reactor-thread-confined
  std::atomic<bool> closed_{false};
  MsgQueue<ConnPtr> pending_;  ///< accepted, not yet claimed
  // Guards released_ only: the dtor's deregistration handshake with the
  // reactor thread (cv_ signals when the loop has dropped the listener).
  Mutex mu_{lock_rank::Rank::endpoint_send};
  CondVar cv_;
  bool released_ VINE_GUARDED_BY(mu_) = false;
};

/// The process-wide shard set. Shard count comes from VINE_REACTOR_SHARDS
/// (default 1, clamped to [1,16]) read once at first use; connections are
/// placed round-robin.
class ReactorPool {
 public:
  static ReactorPool& instance();

  /// Adopt an already-connected non-blocking socket (accept or immediate
  /// connect success).
  ConnPtr adopt(int fd, std::string peer);

  /// Adopt a socket with connect() in flight; the reactor completes or
  /// times out the handshake (await_connected to observe).
  ConnPtr adopt_connecting(int fd, std::string peer,
                           std::chrono::milliseconds timeout);

  /// Own a listening socket (made non-blocking by the caller).
  std::shared_ptr<ReactorListener> listen(int fd, std::string address);

  ReactorStats stats() const;

 private:
  friend class Reactor;
  ReactorPool();
  std::shared_ptr<Reactor> next_shard();

  std::vector<std::shared_ptr<Reactor>> shards_;
  std::atomic<std::uint32_t> rr_{0};
};

}  // namespace vine
