// Filesystem helpers used by the worker's cache and sandbox machinery:
// atomic writes (a cache object must never be visible half-written), cheap
// linking of immutable cache objects into task sandboxes, and disk
// accounting for storage enforcement.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace vine {

/// Read a whole file into a string.
Result<std::string> read_file(const std::filesystem::path& path);

/// Write a file atomically: write to a ".tmp" sibling then rename into
/// place. Parent directories are created as needed.
Status write_file_atomic(const std::filesystem::path& path, std::string_view content);

/// Append to a file, creating parents as needed (not atomic; used for logs
/// and growing outputs in examples).
Status append_file(const std::filesystem::path& path, std::string_view content);

/// Expose an immutable cache object inside a sandbox under a user-visible
/// name. Tries a hard link first (free, shares storage, safe because cache
/// objects are immutable), falls back to symlink for directories, then to a
/// deep copy as a last resort.
Status link_into_sandbox(const std::filesystem::path& cache_object,
                         const std::filesystem::path& sandbox_name);

/// Recursive byte count of a file or directory tree (follows nothing; a
/// symlink counts as the size of its target string).
Result<std::int64_t> tree_size(const std::filesystem::path& path);

/// Recursively copy a file or directory tree.
Status copy_tree(const std::filesystem::path& from, const std::filesystem::path& to);

/// Remove a tree, ignoring errors (used during cleanup paths).
void remove_all_quiet(const std::filesystem::path& path) noexcept;

/// RAII temporary directory: created unique under the system temp dir (or a
/// given parent), removed on destruction.
class TempDir {
 public:
  /// Create under the system temp directory with the given name prefix.
  explicit TempDir(std::string_view prefix = "vine");
  /// Create under an explicit parent directory.
  TempDir(const std::filesystem::path& parent, std::string_view prefix);
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;

  const std::filesystem::path& path() const { return path_; }
  /// Release ownership: the directory will not be deleted.
  std::filesystem::path release();

 private:
  std::filesystem::path path_;
};

}  // namespace vine
