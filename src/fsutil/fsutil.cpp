#include "fsutil/fsutil.hpp"

#include <fstream>

#include "common/uuid.hpp"

namespace vine {

namespace fs = std::filesystem;

Result<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{Errc::io_error, "cannot open: " + path.string()};
  std::string out;
  char buf[64 * 1024];
  while (in) {
    in.read(buf, sizeof buf);
    out.append(buf, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) return Error{Errc::io_error, "read failed: " + path.string()};
  return out;
}

Status write_file_atomic(const fs::path& path, std::string_view content) {
  std::error_code ec;
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
      return Error{Errc::io_error,
                   "cannot create parent of " + path.string() + ": " + ec.message()};
    }
  }
  fs::path tmp = path;
  tmp += ".tmp-" + generate_token(8);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Error{Errc::io_error, "cannot create: " + tmp.string()};
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) {
      remove_all_quiet(tmp);
      return Error{Errc::io_error, "write failed: " + tmp.string()};
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    remove_all_quiet(tmp);
    return Error{Errc::io_error, "rename failed: " + path.string() + ": " + ec.message()};
  }
  return Status::success();
}

Status append_file(const fs::path& path, std::string_view content) {
  std::error_code ec;
  if (path.has_parent_path()) fs::create_directories(path.parent_path(), ec);
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Error{Errc::io_error, "cannot open for append: " + path.string()};
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Error{Errc::io_error, "append failed: " + path.string()};
  return Status::success();
}

Status link_into_sandbox(const fs::path& cache_object, const fs::path& sandbox_name) {
  std::error_code ec;
  if (!fs::exists(cache_object, ec)) {
    return Error{Errc::not_found, "cache object missing: " + cache_object.string()};
  }
  if (sandbox_name.has_parent_path()) {
    fs::create_directories(sandbox_name.parent_path(), ec);
  }
  if (fs::is_directory(cache_object, ec)) {
    // Directories cannot be hard linked; a symlink exposes the shared
    // (immutable) tree without copying.
    fs::create_directory_symlink(fs::absolute(cache_object), sandbox_name, ec);
    if (!ec) return Status::success();
    return copy_tree(cache_object, sandbox_name);
  }
  fs::create_hard_link(cache_object, sandbox_name, ec);
  if (!ec) return Status::success();
  fs::create_symlink(fs::absolute(cache_object), sandbox_name, ec);
  if (!ec) return Status::success();
  return copy_tree(cache_object, sandbox_name);
}

Result<std::int64_t> tree_size(const fs::path& path) {
  std::error_code ec;
  fs::file_status st = fs::symlink_status(path, ec);
  if (ec) return Error{Errc::io_error, "cannot stat: " + path.string()};

  if (fs::is_symlink(st)) {
    fs::path target = fs::read_symlink(path, ec);
    return static_cast<std::int64_t>(target.string().size());
  }
  if (fs::is_regular_file(st)) {
    auto n = fs::file_size(path, ec);
    if (ec) return Error{Errc::io_error, "cannot size: " + path.string()};
    return static_cast<std::int64_t>(n);
  }
  if (fs::is_directory(st)) {
    std::int64_t total = 0;
    for (const auto& de : fs::directory_iterator(path, ec)) {
      VINE_TRY(std::int64_t sub, tree_size(de.path()));
      total += sub;
    }
    if (ec) return Error{Errc::io_error, "cannot list: " + path.string()};
    return total;
  }
  return std::int64_t{0};
}

Status copy_tree(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  if (to.has_parent_path()) fs::create_directories(to.parent_path(), ec);
  fs::copy(from, to,
           fs::copy_options::recursive | fs::copy_options::copy_symlinks, ec);
  if (ec) {
    return Error{Errc::io_error,
                 "copy " + from.string() + " -> " + to.string() + ": " + ec.message()};
  }
  return Status::success();
}

void remove_all_quiet(const fs::path& path) noexcept {
  std::error_code ec;
  fs::remove_all(path, ec);
}

TempDir::TempDir(std::string_view prefix) : TempDir(fs::temp_directory_path(), prefix) {}

TempDir::TempDir(const fs::path& parent, std::string_view prefix) {
  fs::path p = parent / (std::string(prefix) + "-" + generate_token(10));
  fs::create_directories(p);
  path_ = p;
}

TempDir::~TempDir() {
  if (!path_.empty()) remove_all_quiet(path_);
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) remove_all_quiet(path_);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

fs::path TempDir::release() {
  fs::path p = std::move(path_);
  path_.clear();
  return p;
}

}  // namespace vine
