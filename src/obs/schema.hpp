// Versioned JSONL trace schema for vine::obs events.
//
// Schema v2, one canonical JSON object per line. Common required fields:
//   v        int     == kSchemaVersion
//   seq      int     > 0, strictly increasing across the trace
//   t        number  >= 0, non-decreasing per emitter
//   kind     string  member of the EventKind vocabulary
//   emitter  string  non-empty ("manager", "sim", "worker:<id>")
// Per-kind required fields and enum vocabularies are enforced by
// validate_event_json(); TraceValidator adds the cross-event ordering
// checks (seq monotonicity, per-emitter timestamp monotonicity).
//
// Compatibility policy: adding an optional field, a new event kind, or a new
// enum vocabulary member is backward compatible and does NOT bump the version
// (older traces never contain the new values; readers that predate them fail
// loudly on the unknown name). Renaming/removing a field, changing a field's
// meaning, or repurposing an existing vocabulary member bumps kSchemaVersion,
// and readers reject versions they do not know.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/event.hpp"

namespace vine::obs {

// v2: the transfer-source vocabulary grew "prefetch" (lookahead scheduling's
// background input staging; the source worker rides in source_key). Still v2
// (additive): source "replica" plus the replica_repair and factory_scale
// kinds, emitted only when k-replication / the elastic factory are enabled.
inline constexpr std::int64_t kSchemaVersion = 2;

/// Validate one parsed JSONL line against the per-event schema (required
/// fields, types, enum vocabulary). Cross-event checks live in
/// TraceValidator.
Result<void> validate_event_json(const json::Value& obj);

/// Streaming validator for a whole trace: per-event schema plus strictly
/// increasing seq and per-emitter non-decreasing timestamps.
class TraceValidator {
 public:
  /// Validate the next line (raw JSONL text). Blank lines are rejected.
  Result<void> feed_line(std::string_view line);

  /// Validate the next already-parsed object.
  Result<void> feed(const json::Value& obj);

  /// Number of events accepted so far.
  std::size_t events() const { return events_; }

 private:
  std::size_t events_ = 0;
  std::uint64_t last_seq_ = 0;
  std::map<std::string, double, std::less<>> last_t_;
};

/// Load a JSONL trace file, validating every line (schema + ordering).
/// The error message carries the 1-based line number of the first violation.
Result<std::vector<Event>> load_trace_file(const std::string& path);

}  // namespace vine::obs
