// Derived views over the unified event stream: the paper's Figure-12 task
// view (one row per task) and worker view (running / transferring / idle
// intervals per worker), plus the per-source transfer matrix and bandwidth
// time series used by the evaluation figures.
//
// ViewBuilder consumes events incrementally (the TraceSink feeds it every
// emit), keeping only compact per-worker counter change lists and one row
// per task — so the views stay cheap even for simulations whose full event
// stream would be hundreds of megabytes. All derivations previously lived
// in the sim-only vinesim::TraceRecorder; they now work identically for
// runtime traces because both halves emit the same vocabulary.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace vine::obs {

/// One executed task in the task view.
struct TaskRow {
  std::uint64_t task_id = 0;
  std::string worker;
  std::string category;   ///< workload phase label ("process", "library:x", ...)
  double ready_at = 0;    ///< first time the task had all dependencies
  double started_at = 0;  ///< execution start (dispatch when no running event)
  double finished_at = 0; ///< completion / failure time
  bool ok = true;
};

/// Worker activity states in the worker view (Figure 12 bottom row).
enum class WorkerState : std::uint8_t { idle = 0, transfer = 1, busy = 2 };

/// "idle" / "transfer" / "busy".
const char* worker_state_name(WorkerState s) noexcept;

/// One homogeneous interval of a worker's activity.
struct ActivityInterval {
  double begin = 0;
  double end = 0;
  WorkerState state = WorkerState::idle;
};

/// Sum of (end-begin) per state for one worker.
struct Utilization {
  double busy = 0, transfer = 0, idle = 0;
};

/// One cell of the per-source transfer matrix.
struct TransferCell {
  std::int64_t count = 0;
  std::int64_t bytes = 0;
};

/// One bin of the cluster-wide transfer bandwidth time series.
struct BandwidthPoint {
  double t = 0;            ///< bin start time
  std::int64_t bytes = 0;  ///< bytes whose transfers completed in this bin
};

/// Incrementally folds events into the evaluation views.
class ViewBuilder {
 public:
  /// Fold one event in. Events must arrive in sink (seq) order; per-emitter
  /// timestamps are monotonic by TraceSink contract.
  void apply(const Event& ev);

  /// Task view: one row per completed (done or failed) task, in completion
  /// order.
  const std::vector<TaskRow>& tasks() const { return tasks_; }

  /// Worker view: timeline per worker up to `t_end`, merged into maximal
  /// intervals. busy dominates transfer dominates idle when overlapping.
  /// Intervals never extend past `t_end`; a worker still mid-transfer (or
  /// mid-task) at `t_end` gets a final interval flushed up to exactly
  /// `t_end` (the finalization defect the old sim TraceRecorder had).
  std::map<std::string, std::vector<ActivityInterval>> timelines(double t_end) const;

  /// Completion curve: sorted finish times of ok tasks.
  std::vector<double> completion_times() const;

  Utilization utilization(const std::string& worker, double t_end) const;

  /// Per-source transfer matrix over *successful* transfers:
  /// source kind ("manager" / "url" / "worker") -> dest node -> {count, bytes}.
  const std::map<std::string, std::map<std::string, TransferCell>>&
  transfer_matrix() const {
    return matrix_;
  }

  /// Bandwidth series: completed-transfer bytes binned by `bin_seconds`.
  /// Bins are contiguous from t=0 through the last completion.
  std::vector<BandwidthPoint> bandwidth_series(double bin_seconds) const;

  /// Tallies kept for the counters view: event counts by kind plus the last
  /// `counters` snapshot event folded in (snapshot keys win on collision).
  std::map<std::string, std::int64_t> counters_view() const;

  std::uint64_t events_applied() const { return events_applied_; }

 private:
  struct Change {
    double t;
    int run_delta;
    int xfer_delta;
  };
  struct PendingTask {
    std::string worker;
    std::string category;
    double ready_at = 0;
    double dispatched_at = -1;
    double running_at = -1;
    bool ready_seen = false;
    bool running_counted = false;  ///< a +1 run change is open on `worker`
  };
  struct InflightXfer {
    std::string worker;
    std::int64_t bytes = -1;
  };

  void close_worker(const std::string& worker, double t);

  std::map<std::string, std::vector<Change>> changes_;
  std::map<std::string, double> join_time_;
  // Live counter state per worker, mirrored from changes_ so worker loss can
  // push exact zeroing deltas.
  std::map<std::string, std::pair<int, int>> live_;  // {running, transferring}
  std::map<std::uint64_t, PendingTask> pending_;
  std::map<std::string, InflightXfer> inflight_;  // xfer uuid -> state
  std::vector<TaskRow> tasks_;
  std::map<std::string, std::map<std::string, TransferCell>> matrix_;
  std::vector<std::pair<double, std::int64_t>> xfer_done_;  // (t, bytes)
  // Per-kind event counts live in a flat array (apply() is on the emit hot
  // path; a map<string> tally there costs an allocation per event) and are
  // materialized as "events.<kind>" names in counters_view().
  std::array<std::int64_t, static_cast<std::size_t>(EventKind::counters) + 1>
      kind_counts_{};
  std::map<std::string, std::int64_t> tallies_;  ///< named non-hot tallies
  std::map<std::string, std::int64_t> last_snapshot_;
  std::uint64_t events_applied_ = 0;
};

}  // namespace vine::obs
