#include "obs/views.hpp"

#include <algorithm>

namespace vine::obs {

const char* worker_state_name(WorkerState s) noexcept {
  switch (s) {
    case WorkerState::idle: return "idle";
    case WorkerState::transfer: return "transfer";
    case WorkerState::busy: return "busy";
  }
  return "idle";
}

void ViewBuilder::close_worker(const std::string& worker, double t) {
  auto it = live_.find(worker);
  if (it == live_.end()) return;
  auto& [running, transferring] = it->second;
  if (running != 0 || transferring != 0) {
    changes_[worker].push_back({t, -running, -transferring});
    running = 0;
    transferring = 0;
  }
  // Tasks whose open +1 lived on this worker were cancelled by the zeroing
  // delta above; their eventual re-run opens a fresh +1 elsewhere.
  for (auto& [id, p] : pending_) {
    if (p.running_counted && p.worker == worker) p.running_counted = false;
  }
  // Aborted transfers on this worker may never see a transfer_end; forget
  // them so a stray late end cannot double-decrement.
  for (auto it2 = inflight_.begin(); it2 != inflight_.end();) {
    if (it2->second.worker == worker) {
      it2 = inflight_.erase(it2);
    } else {
      ++it2;
    }
  }
}

void ViewBuilder::apply(const Event& ev) {
  ++events_applied_;
  ++kind_counts_[static_cast<std::size_t>(ev.kind)];
  switch (ev.kind) {
    case EventKind::worker_join: {
      join_time_.emplace(ev.worker, ev.t);
      changes_[ev.worker];  // timeline exists even if never active
      live_.emplace(ev.worker, std::pair<int, int>{0, 0});
      break;
    }
    case EventKind::worker_lost:
    case EventKind::worker_evicted: {
      close_worker(ev.worker, ev.t);
      break;
    }
    case EventKind::task_state: {
      PendingTask& p = pending_[ev.task];
      if (!ev.category.empty()) p.category = ev.category;
      if (ev.state == "ready") {
        if (!p.ready_seen) {
          p.ready_at = ev.t;
          p.ready_seen = true;
        }
      } else if (ev.state == "dispatched") {
        p.dispatched_at = ev.t;
        if (!ev.worker.empty()) p.worker = ev.worker;
      } else if (ev.state == "running") {
        p.running_at = ev.t;
        if (!ev.worker.empty()) p.worker = ev.worker;
        if (!p.worker.empty()) {
          changes_[p.worker].push_back({ev.t, +1, 0});
          live_[p.worker].first += 1;
          p.running_counted = true;
        }
      } else if (ev.state == "done" || ev.state == "failed") {
        if (!ev.worker.empty()) p.worker = ev.worker;
        if (p.running_counted && !p.worker.empty()) {
          changes_[p.worker].push_back({ev.t, -1, 0});
          live_[p.worker].first -= 1;
        } else if (p.dispatched_at >= 0 && !p.worker.empty()) {
          // Runtime traces have no worker-clock `running` events; show the
          // dispatch..completion span as busy. Timelines sort by t, so the
          // retroactive +1 lands correctly.
          changes_[p.worker].push_back({p.dispatched_at, +1, 0});
          changes_[p.worker].push_back({ev.t, -1, 0});
        }
        TaskRow row;
        row.task_id = ev.task;
        row.worker = p.worker;
        row.category = p.category;
        row.ready_at = p.ready_seen ? p.ready_at : 0;
        row.started_at = p.running_at >= 0    ? p.running_at
                         : p.dispatched_at >= 0 ? p.dispatched_at
                                                : ev.t;
        row.finished_at = ev.t;
        row.ok = (ev.state == "done") && ev.ok;
        tasks_.push_back(std::move(row));
        pending_.erase(ev.task);
      }
      break;
    }
    case EventKind::transfer_begin: {
      if (!ev.xfer.empty()) inflight_[ev.xfer] = {ev.worker, ev.bytes};
      if (!ev.worker.empty()) {
        changes_[ev.worker].push_back({ev.t, 0, +1});
        live_[ev.worker].second += 1;
      }
      break;
    }
    case EventKind::transfer_end: {
      auto it = inflight_.find(ev.xfer);
      if (it == inflight_.end()) break;  // aborted at worker loss, or unpaired
      const std::string& worker = it->second.worker;
      if (!worker.empty()) {
        changes_[worker].push_back({ev.t, 0, -1});
        live_[worker].second -= 1;
      }
      if (ev.ok) {
        std::int64_t bytes = ev.bytes >= 0 ? ev.bytes : it->second.bytes;
        if (bytes < 0) bytes = 0;
        TransferCell& cell = matrix_[ev.source][ev.dest];
        cell.count += 1;
        cell.bytes += bytes;
        xfer_done_.push_back({ev.t, bytes});
      }
      inflight_.erase(it);
      break;
    }
    case EventKind::sched_pass: {
      tallies_["sched.passes"] += 1;
      if (ev.scanned >= 0) tallies_["sched.tasks_scanned"] += ev.scanned;
      if (ev.dispatched >= 0) tallies_["sched.tasks_dispatched"] += ev.dispatched;
      break;
    }
    case EventKind::cache_insert:
    case EventKind::cache_evict:
    case EventKind::fault_injected:
      break;  // tallied above; no interval/row state
    case EventKind::counters: {
      last_snapshot_ = ev.counters;
      break;
    }
  }
}

std::map<std::string, std::vector<ActivityInterval>> ViewBuilder::timelines(
    double t_end) const {
  std::map<std::string, std::vector<ActivityInterval>> out;
  for (const auto& [worker, raw] : changes_) {
    auto changes = raw;
    std::stable_sort(changes.begin(), changes.end(),
                     [](const Change& a, const Change& b) { return a.t < b.t; });
    std::vector<ActivityInterval> intervals;
    double t = join_time_.count(worker) ? join_time_.at(worker) : 0.0;
    int running = 0, transferring = 0;
    auto state_of = [&] {
      if (running > 0) return WorkerState::busy;
      if (transferring > 0) return WorkerState::transfer;
      return WorkerState::idle;
    };
    for (const auto& c : changes) {
      // Clamp at the horizon: changes recorded past t_end (retrievals
      // draining after makespan, a fetch that outlives the last task) must
      // not grow intervals beyond it.
      if (c.t >= t_end) break;
      if (c.t > t) {
        WorkerState s = state_of();
        if (!intervals.empty() && intervals.back().state == s &&
            intervals.back().end == t) {
          intervals.back().end = c.t;
        } else {
          intervals.push_back({t, c.t, s});
        }
        t = c.t;
      }
      running += c.run_delta;
      transferring += c.xfer_delta;
    }
    // Flush the open state out to the horizon, so a worker still
    // transferring (or running) at t_end keeps its final interval.
    if (t_end > t) intervals.push_back({t, t_end, state_of()});
    // Merge adjacent equal states.
    std::vector<ActivityInterval> merged;
    for (const auto& iv : intervals) {
      if (!merged.empty() && merged.back().state == iv.state &&
          merged.back().end == iv.begin) {
        merged.back().end = iv.end;
      } else {
        merged.push_back(iv);
      }
    }
    out[worker] = std::move(merged);
  }
  return out;
}

std::vector<double> ViewBuilder::completion_times() const {
  std::vector<double> out;
  for (const auto& t : tasks_) {
    if (t.ok) out.push_back(t.finished_at);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Utilization ViewBuilder::utilization(const std::string& worker,
                                     double t_end) const {
  Utilization u;
  auto tl = timelines(t_end);
  auto it = tl.find(worker);
  if (it == tl.end()) return u;
  for (const auto& iv : it->second) {
    double len = iv.end - iv.begin;
    switch (iv.state) {
      case WorkerState::busy: u.busy += len; break;
      case WorkerState::transfer: u.transfer += len; break;
      case WorkerState::idle: u.idle += len; break;
    }
  }
  return u;
}

std::vector<BandwidthPoint> ViewBuilder::bandwidth_series(
    double bin_seconds) const {
  std::vector<BandwidthPoint> out;
  if (bin_seconds <= 0 || xfer_done_.empty()) return out;
  double t_max = 0;
  for (const auto& [t, bytes] : xfer_done_) t_max = std::max(t_max, t);
  auto bins = static_cast<std::size_t>(t_max / bin_seconds) + 1;
  out.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out[i].t = static_cast<double>(i) * bin_seconds;
  }
  for (const auto& [t, bytes] : xfer_done_) {
    auto i = static_cast<std::size_t>(t / bin_seconds);
    if (i >= bins) i = bins - 1;
    out[i].bytes += bytes;
  }
  return out;
}

std::map<std::string, std::int64_t> ViewBuilder::counters_view() const {
  std::map<std::string, std::int64_t> out = tallies_;
  for (std::size_t k = 0; k < kind_counts_.size(); ++k) {
    if (kind_counts_[k] > 0) {
      out[std::string("events.") + kind_name(static_cast<EventKind>(k))] =
          kind_counts_[k];
    }
  }
  for (const auto& [k, v] : last_snapshot_) out[k] = v;
  return out;
}

}  // namespace vine::obs
