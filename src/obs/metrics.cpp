#include "obs/metrics.hpp"

namespace vine::obs {

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

void MetricsRegistry::expose(const std::string& name,
                             const std::int64_t* source) {
  MutexLock lk(mu_);
  exposed_[name] = source;
}

void MetricsRegistry::unexpose(const std::string& name) {
  MutexLock lk(mu_);
  exposed_.erase(name);
  exposed_fns_.erase(name);
}

void MetricsRegistry::expose_fn(const std::string& name,
                                std::function<std::int64_t()> fn) {
  MutexLock lk(mu_);
  exposed_fns_[name] = std::move(fn);
}

std::map<std::string, std::int64_t> MetricsRegistry::snapshot() const {
  MutexLock lk(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  for (const auto& [name, src] : exposed_) {
    if (src) out[name] = *src;
  }
  for (const auto& [name, fn] : exposed_fns_) {
    if (fn) out[name] = fn();
  }
  return out;
}

}  // namespace vine::obs
