// MetricsRegistry — cheap monotonic counters/gauges feeding the trace.
//
// Two kinds of entries:
//   * owned counters: lock-free atomics created on demand via counter();
//     emitters bump them on hot paths without touching the registry lock.
//   * exposed gauges: borrowed `const std::int64_t*` pointers into existing
//     stats structs (ManagerStats, SimStats fields), registered once via
//     expose(). The registry does not own or synchronize these — they must
//     be read from the thread that owns the stats struct (the manager
//     application thread / the sim loop), which is where snapshot() is
//     called at quiescent points.
//
// snapshot() merges both into one name->value map; callers emit it as a
// `counters` trace event (Event::make_counters), which is how the trace and
// ManagerStats-style structs stay derived from the same numbers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.hpp"

namespace vine::obs {

/// One owned monotonic counter. Pointer-stable for the registry's lifetime.
class Counter {
 public:
  void add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class MetricsRegistry {
 public:
  /// Get-or-create an owned counter. The returned pointer stays valid for
  /// the registry's lifetime. Thread-safe.
  Counter* counter(const std::string& name);

  /// Register a borrowed gauge read at snapshot time. `source` must outlive
  /// the registry (or be removed via unexpose). Re-exposing a name replaces
  /// the previous pointer.
  void expose(const std::string& name, const std::int64_t* source);
  void unexpose(const std::string& name);

  /// Register a computed gauge: `fn` is invoked at snapshot time. For
  /// sources without a stable int64 address (reactor stats summed across
  /// shards). Must be callable until unexposed and must not acquire locks
  /// ranked at or below `metrics`.
  void expose_fn(const std::string& name, std::function<std::int64_t()> fn);

  /// Merged view: owned counters plus every exposed gauge's current value.
  /// Exposed sources are read unsynchronized — call at quiescent points
  /// from the thread owning them.
  std::map<std::string, std::int64_t> snapshot() const;

 private:
  mutable Mutex mu_{lock_rank::Rank::metrics};  // guards counters_ and exposed_ (the maps, not the values)
  std::map<std::string, std::unique_ptr<Counter>> counters_ VINE_GUARDED_BY(mu_);
  std::map<std::string, const std::int64_t*> exposed_ VINE_GUARDED_BY(mu_);
  std::map<std::string, std::function<std::int64_t()>> exposed_fns_
      VINE_GUARDED_BY(mu_);
};

}  // namespace vine::obs
