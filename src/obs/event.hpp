// vine::obs — structured event vocabulary shared by the runtime and the
// simulator.
//
// Every observable action in the system (task state transitions, transfers,
// cache churn, worker membership, scheduler passes, fault injections) is
// recorded as one flat Event. Both halves of the repo — the real
// Manager/Worker runtime and vinesim::ClusterSim — emit the *same* kinds
// with the same field semantics, so traces from either half can be rendered,
// validated, and diffed by the same tooling (tools/vine_report, the golden
// and differential tests).
//
// Events serialize to JSONL: one canonical-JSON object per line, schema
// versioned via the "v" field (see obs/schema.hpp). Only fields that are
// meaningful for the event's kind are emitted, so lines stay short.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "json/json.hpp"

namespace vine::obs {

/// Event vocabulary. Keep in sync with kind_name()/kind_from_name() and the
/// per-kind required-field table in obs/schema.cpp. Adding a kind is a
/// schema revision (bump kSchemaVersion when semantics change).
enum class EventKind : std::uint8_t {
  task_state = 0,   ///< a task entered `state` (ready/dispatched/running/done/failed)
  transfer_begin,   ///< a file transfer started (source kind + dest)
  transfer_end,     ///< a transfer finished (ok) or was aborted (!ok)
  cache_insert,     ///< an object became available in a node's cache
  cache_evict,      ///< an object left a node's cache (capacity, loss, removal)
  worker_join,      ///< a worker connected and was admitted
  worker_lost,      ///< a worker disconnected or crashed
  worker_evicted,   ///< the manager expelled a silent/hung worker
  sched_pass,       ///< one scheduler pass: tasks scanned / dispatched
  fault_injected,   ///< a deterministic fault fired (chaos plans)
  counters,         ///< a MetricsRegistry snapshot (typically end of run)
  replica_repair,   ///< redundancy engine queued a re-replication of a survivor
  factory_scale,    ///< elastic worker factory scaled the pool (detail says how)
};

/// "task_state", "transfer_begin", ... — stable wire names.
const char* kind_name(EventKind k) noexcept;

/// Reverse lookup; false when `name` is not part of the vocabulary.
bool kind_from_name(const std::string& name, EventKind* out) noexcept;

/// One trace event. Flat by design: a single struct covers every kind, and
/// per-kind factory helpers below populate exactly the meaningful fields.
/// Sentinel conventions: empty string = unset, bytes/scanned/dispatched
/// -1 = unknown, task 0 = no task. `seq` is assigned by the TraceSink.
struct Event {
  std::uint64_t seq = 0;  ///< sink-assigned, strictly increasing per trace
  double t = 0;           ///< emitter-local clock, seconds; monotonic per emitter
  EventKind kind = EventKind::task_state;
  std::string emitter;    ///< "manager", "sim", "worker:<id>"

  std::string worker;     ///< subject worker id (membership, cache, task host)
  std::uint64_t task = 0; ///< task id for task_state events
  std::string state;      ///< task state name ("ready", "running", ...)
  std::string category;   ///< task workload label ("process", "library:x", ...)

  std::string file;       ///< cache object name (transfers, cache churn)
  std::string source;     ///< transfer source kind: "manager" | "url" | "worker"
                          ///< | "prefetch" (background staging) | "replica"
                          ///< (redundancy copy; for both background kinds the
                          ///< serving worker rides in source_key)
  std::string source_key; ///< url text or peer worker id when source != manager
  std::string dest;       ///< transfer destination node ("manager" or worker id)
  std::string xfer;       ///< transfer uuid pairing begin/end events
  std::int64_t bytes = -1;///< payload size when known

  bool ok = true;         ///< success flag (transfer_end, task done/failed)
  std::string detail;     ///< fault kind, evict reason, free-form annotation

  std::int64_t scanned = -1;    ///< sched_pass: ready tasks examined
  std::int64_t dispatched = -1; ///< sched_pass: tasks placed this pass

  std::map<std::string, std::int64_t> counters;  ///< counters snapshot payload

  // ---- factories: one per kind, populating only the meaningful fields ----
  static Event make_task_state(double t, std::uint64_t task, std::string state,
                               std::string worker, std::string category,
                               bool ok = true);
  static Event make_transfer_begin(double t, std::string file, std::string source,
                                   std::string source_key, std::string dest,
                                   std::string worker, std::int64_t bytes,
                                   std::string xfer);
  static Event make_transfer_end(double t, std::string file, std::string source,
                                 std::string source_key, std::string dest,
                                 std::string worker, std::int64_t bytes,
                                 std::string xfer, bool ok,
                                 std::string detail = "");
  static Event make_cache_insert(double t, std::string worker, std::string file,
                                 std::int64_t bytes, std::string detail = "");
  static Event make_cache_evict(double t, std::string worker, std::string file,
                                std::string detail);
  static Event make_worker_join(double t, std::string worker,
                                std::string detail = "");
  static Event make_worker_lost(double t, std::string worker,
                                std::string detail = "");
  static Event make_worker_evicted(double t, std::string worker,
                                   std::string detail);
  static Event make_sched_pass(double t, std::int64_t scanned,
                               std::int64_t dispatched);
  static Event make_fault_injected(double t, std::string detail,
                                   std::string worker = "");
  static Event make_counters(double t,
                             std::map<std::string, std::int64_t> counters);
  static Event make_replica_repair(double t, std::string worker,
                                   std::string file, std::string detail = "");
  static Event make_factory_scale(double t, std::string detail);
};

/// Canonical JSON object for one event (sorted keys, unset fields omitted).
json::Value event_to_json(const Event& ev);

/// One JSONL line: event_to_json(ev).dump() + '\n'-free string.
std::string event_to_jsonl(const Event& ev);

/// Parse one JSON object back into an Event. Unknown keys are ignored so
/// newer traces degrade gracefully; schema validation is separate (schema.hpp).
Result<Event> event_from_json(const json::Value& obj);

}  // namespace vine::obs
