#include "obs/trace_sink.hpp"

#include <utility>

namespace vine::obs {

TraceSink::TraceSink(TraceSinkOptions opts) : opts_(std::move(opts)) {
  // Locked although no concurrent access is possible yet: keeps the clang
  // thread-safety analysis unconditional on every out_ touch.
  MutexLock lk(mu_);
  if (!opts_.jsonl_path.empty()) {
    out_.open(opts_.jsonl_path, std::ios::out | std::ios::trunc);
  }
}

TraceSink::~TraceSink() {
  MutexLock lk(mu_);
  if (out_.is_open()) out_.flush();
}

void TraceSink::emit(std::string_view emitter, Event ev) {
  MutexLock lk(mu_);
  ev.seq = ++seq_;
  ev.emitter.assign(emitter);
  // Per-emitter monotonic clamp: two worker threads can read the clock and
  // reach emit() out of order; the schema promises non-decreasing t per
  // emitter, so enforce it structurally at the collection point.
  auto it = last_t_.find(ev.emitter);
  if (it == last_t_.end()) {
    last_t_.emplace(ev.emitter, ev.t);
  } else {
    if (ev.t < it->second) ev.t = it->second;
    it->second = ev.t;
  }
  views_.apply(ev);
  if (out_.is_open()) out_ << event_to_jsonl(ev) << '\n';
  if (opts_.retain_events) retained_.push_back(std::move(ev));
}

void TraceSink::flush() {
  MutexLock lk(mu_);
  if (out_.is_open()) out_.flush();
}

std::uint64_t TraceSink::event_count() const {
  MutexLock lk(mu_);
  return seq_;
}

std::vector<Event> TraceSink::events() const {
  MutexLock lk(mu_);
  return retained_;
}

}  // namespace vine::obs
