#include "obs/schema.hpp"

#include <fstream>

namespace vine::obs {

namespace {

Error bad(const std::string& msg) { return Error{Errc::parse_error, msg}; }

bool has_string(const json::Value& o, const char* key, bool non_empty = true) {
  const json::Value* v = o.find(key);
  return v && v->is_string() && (!non_empty || !v->as_string().empty());
}

bool has_int(const json::Value& o, const char* key) {
  const json::Value* v = o.find(key);
  return v && v->is_int();
}

bool has_bool(const json::Value& o, const char* key) {
  const json::Value* v = o.find(key);
  return v && v->is_bool();
}

bool in_vocab(const std::string& s, std::initializer_list<const char*> vocab) {
  for (const char* v : vocab) {
    if (s == v) return true;
  }
  return false;
}

Result<void> validate_transfer(const json::Value& o, bool is_end) {
  if (!has_string(o, "file")) return bad("transfer event missing file");
  if (!has_string(o, "source")) return bad("transfer event missing source");
  const std::string& src = o.find("source")->as_string();
  if (!in_vocab(src, {"manager", "url", "worker", "prefetch", "replica"})) {
    return bad("transfer source not in vocabulary: " + src);
  }
  if (src != "manager" && !has_string(o, "source_key")) {
    return bad("transfer with source=" + src + " missing source_key");
  }
  if (!has_string(o, "dest")) return bad("transfer event missing dest");
  if (!has_string(o, "xfer")) return bad("transfer event missing xfer uuid");
  if (is_end && !has_bool(o, "ok")) return bad("transfer_end missing ok");
  return Result<void>{};
}

}  // namespace

Result<void> validate_event_json(const json::Value& obj) {
  if (!obj.is_object()) return bad("trace line is not a JSON object");
  const json::Value* v = obj.find("v");
  if (!v || !v->is_int()) return bad("missing schema version field v");
  if (v->as_int() != kSchemaVersion) {
    return bad("unsupported schema version " + std::to_string(v->as_int()));
  }
  const json::Value* seq = obj.find("seq");
  if (!seq || !seq->is_int() || seq->as_int() <= 0) {
    return bad("missing or non-positive seq");
  }
  const json::Value* t = obj.find("t");
  if (!t || !t->is_number() || t->as_double() < 0) {
    return bad("missing or negative t");
  }
  if (!has_string(obj, "emitter")) return bad("missing emitter");
  if (!has_string(obj, "kind")) return bad("missing kind");
  EventKind kind;
  if (!kind_from_name(obj.find("kind")->as_string(), &kind)) {
    return bad("unknown kind: " + obj.find("kind")->as_string());
  }

  switch (kind) {
    case EventKind::task_state: {
      if (!has_int(obj, "task") || obj.find("task")->as_int() <= 0) {
        return bad("task_state missing positive task id");
      }
      if (!has_string(obj, "state")) return bad("task_state missing state");
      const std::string& st = obj.find("state")->as_string();
      if (!in_vocab(st, {"ready", "dispatched", "running", "done", "failed"})) {
        return bad("task state not in vocabulary: " + st);
      }
      if (!has_bool(obj, "ok")) return bad("task_state missing ok");
      break;
    }
    case EventKind::transfer_begin:
      return validate_transfer(obj, /*is_end=*/false);
    case EventKind::transfer_end:
      return validate_transfer(obj, /*is_end=*/true);
    case EventKind::cache_insert:
    case EventKind::cache_evict: {
      if (!has_string(obj, "worker")) return bad("cache event missing worker");
      if (!has_string(obj, "file")) return bad("cache event missing file");
      if (kind == EventKind::cache_evict && !has_string(obj, "detail")) {
        return bad("cache_evict missing detail (reason)");
      }
      break;
    }
    case EventKind::worker_join:
    case EventKind::worker_lost:
    case EventKind::worker_evicted: {
      if (!has_string(obj, "worker")) {
        return bad("worker membership event missing worker");
      }
      break;
    }
    case EventKind::sched_pass: {
      if (!has_int(obj, "scanned") || obj.find("scanned")->as_int() < 0) {
        return bad("sched_pass missing scanned");
      }
      if (!has_int(obj, "dispatched") || obj.find("dispatched")->as_int() < 0) {
        return bad("sched_pass missing dispatched");
      }
      if (obj.find("dispatched")->as_int() > obj.find("scanned")->as_int()) {
        return bad("sched_pass dispatched exceeds scanned");
      }
      break;
    }
    case EventKind::fault_injected: {
      if (!has_string(obj, "detail")) {
        return bad("fault_injected missing detail (fault kind)");
      }
      break;
    }
    case EventKind::counters: {
      const json::Value* c = obj.find("counters");
      if (!c || !c->is_object()) return bad("counters event missing counters");
      for (const auto& [k, val] : c->as_object()) {
        if (!val.is_int()) return bad("counter " + k + " is not an integer");
      }
      break;
    }
    case EventKind::replica_repair: {
      if (!has_string(obj, "worker")) return bad("replica_repair missing worker");
      if (!has_string(obj, "file")) return bad("replica_repair missing file");
      break;
    }
    case EventKind::factory_scale: {
      if (!has_string(obj, "detail")) {
        return bad("factory_scale missing detail (direction and pool size)");
      }
      break;
    }
  }
  return Result<void>{};
}

Result<void> TraceValidator::feed_line(std::string_view line) {
  auto parsed = json::parse(line);
  if (!parsed) {
    return Error{Errc::parse_error,
                 "trace line is not valid JSON: " + parsed.error().message};
  }
  return feed(*parsed);
}

Result<void> TraceValidator::feed(const json::Value& obj) {
  if (auto ok = validate_event_json(obj); !ok) return ok;
  auto seq = static_cast<std::uint64_t>(obj.find("seq")->as_int());
  if (seq <= last_seq_) {
    return Error{Errc::parse_error,
                 "seq not strictly increasing: " + std::to_string(seq) +
                     " after " + std::to_string(last_seq_)};
  }
  last_seq_ = seq;
  const std::string& emitter = obj.find("emitter")->as_string();
  double t = obj.find("t")->as_double();
  auto it = last_t_.find(emitter);
  if (it == last_t_.end()) {
    last_t_.emplace(emitter, t);
  } else {
    if (t < it->second) {
      return Error{Errc::parse_error,
                   "t went backwards for emitter " + emitter};
    }
    it->second = t;
  }
  ++events_;
  return Result<void>{};
}

Result<std::vector<Event>> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error{Errc::io_error, "cannot open trace file: " + path};
  std::vector<Event> out;
  TraceValidator validator;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto parsed = json::parse(line);
    if (!parsed) {
      return Error{Errc::parse_error,
                   path + ":" + std::to_string(lineno) + ": " +
                       parsed.error().message};
    }
    if (auto ok = validator.feed(*parsed); !ok) {
      return Error{Errc::parse_error, path + ":" + std::to_string(lineno) +
                                          ": " + ok.error().message};
    }
    auto ev = event_from_json(*parsed);
    if (!ev) {
      return Error{Errc::parse_error, path + ":" + std::to_string(lineno) +
                                          ": " + ev.error().message};
    }
    out.push_back(std::move(*ev));
  }
  return out;
}

}  // namespace vine::obs
