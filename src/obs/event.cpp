#include "obs/event.hpp"

#include <utility>

#include "obs/schema.hpp"

namespace vine::obs {

namespace {

// Order must match EventKind.
constexpr const char* kKindNames[] = {
    "task_state",    "transfer_begin", "transfer_end",   "cache_insert",
    "cache_evict",   "worker_join",    "worker_lost",    "worker_evicted",
    "sched_pass",    "fault_injected", "counters",       "replica_repair",
    "factory_scale",
};
constexpr std::size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

}  // namespace

const char* kind_name(EventKind k) noexcept {
  auto i = static_cast<std::size_t>(k);
  return i < kKindCount ? kKindNames[i] : "unknown";
}

bool kind_from_name(const std::string& name, EventKind* out) noexcept {
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (name == kKindNames[i]) {
      *out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

Event Event::make_task_state(double t, std::uint64_t task, std::string state,
                             std::string worker, std::string category, bool ok) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::task_state;
  ev.task = task;
  ev.state = std::move(state);
  ev.worker = std::move(worker);
  ev.category = std::move(category);
  ev.ok = ok;
  return ev;
}

Event Event::make_transfer_begin(double t, std::string file, std::string source,
                                 std::string source_key, std::string dest,
                                 std::string worker, std::int64_t bytes,
                                 std::string xfer) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::transfer_begin;
  ev.file = std::move(file);
  ev.source = std::move(source);
  ev.source_key = std::move(source_key);
  ev.dest = std::move(dest);
  ev.worker = std::move(worker);
  ev.bytes = bytes;
  ev.xfer = std::move(xfer);
  return ev;
}

Event Event::make_transfer_end(double t, std::string file, std::string source,
                               std::string source_key, std::string dest,
                               std::string worker, std::int64_t bytes,
                               std::string xfer, bool ok, std::string detail) {
  Event ev = make_transfer_begin(t, std::move(file), std::move(source),
                                 std::move(source_key), std::move(dest),
                                 std::move(worker), bytes, std::move(xfer));
  ev.kind = EventKind::transfer_end;
  ev.ok = ok;
  ev.detail = std::move(detail);
  return ev;
}

Event Event::make_cache_insert(double t, std::string worker, std::string file,
                               std::int64_t bytes, std::string detail) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::cache_insert;
  ev.worker = std::move(worker);
  ev.file = std::move(file);
  ev.bytes = bytes;
  ev.detail = std::move(detail);
  return ev;
}

Event Event::make_cache_evict(double t, std::string worker, std::string file,
                              std::string detail) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::cache_evict;
  ev.worker = std::move(worker);
  ev.file = std::move(file);
  ev.detail = std::move(detail);
  return ev;
}

Event Event::make_worker_join(double t, std::string worker, std::string detail) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::worker_join;
  ev.worker = std::move(worker);
  ev.detail = std::move(detail);
  return ev;
}

Event Event::make_worker_lost(double t, std::string worker, std::string detail) {
  Event ev = make_worker_join(t, std::move(worker), std::move(detail));
  ev.kind = EventKind::worker_lost;
  return ev;
}

Event Event::make_worker_evicted(double t, std::string worker,
                                 std::string detail) {
  Event ev = make_worker_join(t, std::move(worker), std::move(detail));
  ev.kind = EventKind::worker_evicted;
  return ev;
}

Event Event::make_sched_pass(double t, std::int64_t scanned,
                             std::int64_t dispatched) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::sched_pass;
  ev.scanned = scanned;
  ev.dispatched = dispatched;
  return ev;
}

Event Event::make_fault_injected(double t, std::string detail,
                                 std::string worker) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::fault_injected;
  ev.detail = std::move(detail);
  ev.worker = std::move(worker);
  return ev;
}

Event Event::make_counters(double t,
                           std::map<std::string, std::int64_t> counters) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::counters;
  ev.counters = std::move(counters);
  return ev;
}

Event Event::make_replica_repair(double t, std::string worker, std::string file,
                                 std::string detail) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::replica_repair;
  ev.worker = std::move(worker);
  ev.file = std::move(file);
  ev.detail = std::move(detail);
  return ev;
}

Event Event::make_factory_scale(double t, std::string detail) {
  Event ev;
  ev.t = t;
  ev.kind = EventKind::factory_scale;
  ev.detail = std::move(detail);
  return ev;
}

json::Value event_to_json(const Event& ev) {
  json::Object o;
  o["v"] = kSchemaVersion;
  o["seq"] = ev.seq;
  o["t"] = ev.t;
  o["kind"] = kind_name(ev.kind);
  o["emitter"] = ev.emitter;
  if (!ev.worker.empty()) o["worker"] = ev.worker;
  if (ev.task != 0) o["task"] = ev.task;
  if (!ev.state.empty()) o["state"] = ev.state;
  if (!ev.category.empty()) o["category"] = ev.category;
  if (!ev.file.empty()) o["file"] = ev.file;
  if (!ev.source.empty()) o["source"] = ev.source;
  if (!ev.source_key.empty()) o["source_key"] = ev.source_key;
  if (!ev.dest.empty()) o["dest"] = ev.dest;
  if (!ev.xfer.empty()) o["xfer"] = ev.xfer;
  if (ev.bytes >= 0) o["bytes"] = ev.bytes;
  // ok defaults to true; only failures and explicit end/done events carry it.
  if (!ev.ok || ev.kind == EventKind::transfer_end ||
      ev.kind == EventKind::task_state) {
    o["ok"] = ev.ok;
  }
  if (!ev.detail.empty()) o["detail"] = ev.detail;
  if (ev.scanned >= 0) o["scanned"] = ev.scanned;
  if (ev.dispatched >= 0) o["dispatched"] = ev.dispatched;
  if (!ev.counters.empty()) {
    json::Object c;
    for (const auto& [k, v] : ev.counters) c[k] = v;
    o["counters"] = std::move(c);
  }
  return json::Value(std::move(o));
}

std::string event_to_jsonl(const Event& ev) { return event_to_json(ev).dump(); }

Result<Event> event_from_json(const json::Value& obj) {
  if (!obj.is_object()) {
    return Error{Errc::parse_error, "trace event is not a JSON object"};
  }
  Event ev;
  std::string kind = obj.get_string("kind");
  if (!kind_from_name(kind, &ev.kind)) {
    return Error{Errc::parse_error, "unknown trace event kind: " + kind};
  }
  ev.seq = static_cast<std::uint64_t>(obj.get_int("seq"));
  ev.t = obj.get_double("t");
  ev.emitter = obj.get_string("emitter");
  ev.worker = obj.get_string("worker");
  ev.task = static_cast<std::uint64_t>(obj.get_int("task"));
  ev.state = obj.get_string("state");
  ev.category = obj.get_string("category");
  ev.file = obj.get_string("file");
  ev.source = obj.get_string("source");
  ev.source_key = obj.get_string("source_key");
  ev.dest = obj.get_string("dest");
  ev.xfer = obj.get_string("xfer");
  ev.bytes = obj.get_int("bytes", -1);
  ev.ok = obj.get_bool("ok", true);
  ev.detail = obj.get_string("detail");
  ev.scanned = obj.get_int("scanned", -1);
  ev.dispatched = obj.get_int("dispatched", -1);
  if (const json::Value* c = obj.find("counters"); c && c->is_object()) {
    for (const auto& [k, v] : c->as_object()) {
      if (v.is_int()) ev.counters[k] = v.as_int();
    }
  }
  return ev;
}

}  // namespace vine::obs
