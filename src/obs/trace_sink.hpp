// TraceSink — the single collection point for vine::obs events.
//
// One sink is shared by every emitter of a deployment (manager + workers of
// a LocalCluster, or a ClusterSim): emit() assigns the trace-wide sequence
// number, clamps the emitter's timestamp monotonic (worker transfer threads
// can race the clock read by a few microseconds), feeds the always-on
// ViewBuilder, and — optionally — retains the full event in memory and/or
// streams it to a JSONL file.
//
// Cost model: a null sink pointer is the disabled path (call sites guard
// with `if (trace_)`, so disabled tracing is a branch on a pointer).
// An enabled emit is one short critical section appending ~16 bytes of view
// state; full-event retention and file streaming are opt-in so large
// simulations can keep views without holding a multi-hundred-MB stream.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "obs/event.hpp"
#include "obs/views.hpp"

namespace vine::obs {

struct TraceSinkOptions {
  bool retain_events = false;  ///< keep every Event in memory (tests, tools)
  std::string jsonl_path;      ///< stream JSONL here when non-empty
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions opts = {});
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Record one event on behalf of `emitter`. Thread-safe. The sink owns
  /// seq assignment and per-emitter monotonic timestamp clamping; the
  /// caller fills every other field (typically via an Event::make_* factory).
  void emit(std::string_view emitter, Event ev);

  /// Flush the JSONL stream (no-op without a file). Call at quiescent
  /// points before handing the path to a reader.
  void flush();

  std::uint64_t event_count() const;

  /// Copy of the retained stream; empty unless retain_events was set.
  std::vector<Event> events() const;

  /// The incrementally built evaluation views. Not synchronized: read only
  /// after the traced run has quiesced (sim returned, cluster stopped) —
  /// hence the analysis escape hatch on a guarded member.
  const ViewBuilder& views() const VINE_NO_THREAD_SAFETY_ANALYSIS {
    return views_;
  }

  const TraceSinkOptions& options() const { return opts_; }

 private:
  TraceSinkOptions opts_;
  // Guards seq_, last_t_, views_, retained_, out_. Ranked inside
  // cache_store: CacheStore emits cache events while holding its own lock.
  mutable Mutex mu_{lock_rank::Rank::trace_sink};
  std::uint64_t seq_ VINE_GUARDED_BY(mu_) = 0;
  std::map<std::string, double, std::less<>> last_t_ VINE_GUARDED_BY(mu_);
  ViewBuilder views_ VINE_GUARDED_BY(mu_);
  std::vector<Event> retained_ VINE_GUARDED_BY(mu_);
  std::ofstream out_ VINE_GUARDED_BY(mu_);
};

}  // namespace vine::obs
