// Replay a WorkflowInstance through either half of the repo from one entry
// point: run_workload(instance, options) drives vinesim::ClusterSim (virtual
// time, paper-scale fabrics, deterministic) or vine::core's LocalCluster
// (real manager/workers in-process, functional replay) with the same
// scheduler policy, redundancy, and fault knobs. Task N of the instance
// becomes task id N in both halves, and the result maps every logical file
// name to its half's cache name, so differential tests can compare the two
// event streams structurally.
//
// Runtime replay is functional, not temporal: declared runtimes are not
// slept (the sim models them), and materialized file bytes are capped by
// runtime_bytes_cap so tests stay fast. Pure control-dependency edges
// (parents sharing no file) are backed by a synthetic 1-byte file in both
// halves so the ordering is enforced identically.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/faults.hpp"
#include "obs/trace_sink.hpp"
#include "redundancy/redundancy.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster_sim.hpp"
#include "wfgen/instance.hpp"

namespace vine::wfgen {

enum class Backend : std::uint8_t {
  sim,      ///< vinesim::ClusterSim — discrete-event, deterministic
  runtime,  ///< vine::LocalCluster — real manager + in-process workers
};

struct ReplayOptions {
  Backend backend = Backend::sim;

  int workers = 8;
  double worker_cores = 4;

  /// Simulator seed; also reseeds the uuid generator before a sim run so
  /// replays are bit-deterministic.
  std::uint64_t seed = 1;

  /// Scheduling policy under test (placement, lookahead, source limits).
  SchedulerConfig sched{};

  /// Proactive k-replication (sim backend).
  redundancy::RedundancyConfig redundancy{};

  /// Deterministic fault schedule, replayed as discrete events (sim backend
  /// only; the runtime chaos harness replays plans in wall-clock time and
  /// stays in tests/chaos_test.cpp). Not owned.
  const faults::FaultPlan* faults = nullptr;

  /// Shared event sink for the run; null leaves tracing off (sim creates a
  /// private retention-free sink).
  std::shared_ptr<obs::TraceSink> trace;

  /// Pin task i (0-based instance order) to worker "w<i % workers>" in both
  /// halves — forces identical placement for differential comparisons.
  bool pin_round_robin = false;

  /// Runtime backend: cap on bytes actually materialized per file (buffer
  /// contents and output writes). Declared sizes above the cap replay at
  /// the cap; the sim backend always uses declared sizes.
  std::int64_t runtime_bytes_cap = 1 << 20;

  /// Runtime backend: per-task completion wait.
  int runtime_wait_ms = 60000;
};

struct ReplayResult {
  double makespan = 0;  ///< virtual seconds (sim); wall seconds (runtime)
  int tasks_done = 0;
  int tasks_unfinished = 0;

  /// Logical file name -> cache name in the executed half (identity for the
  /// sim; manager-assigned names for the runtime). Differential digests use
  /// this to translate transfer events back to logical names.
  std::map<std::string, std::string> cache_names;

  /// Sim backend only: the full counter block of the run.
  vinesim::SimStats sim_stats{};
};

/// Validate and replay `instance` per `options`. Errors: invalid instance,
/// cluster bring-up failure, or a task failing/timing out (runtime).
Result<ReplayResult> run_workload(const WorkflowInstance& instance,
                                  const ReplayOptions& options);

/// Parse + validate + replay a JSON instance document in one call.
Result<ReplayResult> run_workload_json(std::string_view instance_json,
                                       const ReplayOptions& options);

}  // namespace vine::wfgen
