// Versioned JSON workflow-instance format (vine::wfgen), the interchange
// point between the seeded generator, external traces, and the replay
// harness. The field vocabulary is WfCommons-compatible — tasks with
// `parents`, `inputFiles`/`outputFiles` carrying `sizeInBytes` — flattened
// into one document:
//
//   {
//     "format": "vine-workflow-instance",
//     "version": 1,
//     "name": "chain-s7",
//     "shape": "chain",          // provenance label, optional
//     "seed": 7,                 // generator seed, optional
//     "tasks": [
//       {"id": "t1", "category": "stage", "runtimeInSeconds": 12.5,
//        "cores": 1, "parents": [],
//        "inputFiles":  [{"name": "ext1", "sizeInBytes": 1000000}],
//        "outputFiles": [{"name": "t1-out", "sizeInBytes": 2000000}]}
//     ]
//   }
//
// Determinism contract: export_instance() serializes through the canonical
// key-sorted JSON writer, so the same WorkflowInstance always produces the
// same bytes, and a generator run is byte-reproducible from its spec.
// import_instance() never asserts on malformed input: every structural or
// semantic violation (unparseable JSON, cycle, dangling parent id, negative
// byte count, duplicate producer, ...) comes back as a line-numbered error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "json/json.hpp"

namespace vine::wfgen {

inline constexpr std::int64_t kInstanceVersion = 1;
inline constexpr const char* kInstanceFormat = "vine-workflow-instance";

/// One file reference (input or output) with its byte size.
struct InstanceFile {
  std::string name;
  std::int64_t bytes = 0;
};

/// One task. Parents are task ids; data dependencies are expressed by an
/// input file that appears in a parent's outputs. A parent edge with no
/// shared file is a pure control dependency (the replay harness backs it
/// with a synthetic 1-byte file so both halves enforce it).
struct InstanceTask {
  std::string id;
  std::string category;
  double runtime_s = 1.0;
  double cores = 1.0;
  std::vector<std::string> parents;
  std::vector<InstanceFile> inputs;
  std::vector<InstanceFile> outputs;
};

/// A whole workflow instance. Task order is the submission order replay
/// uses (so task N here is task id N in both halves). The generator always
/// emits topological order; imported instances need not be topological for
/// the sim backend, but the runtime backend submits in order and requires
/// every temp's producer to precede its consumers.
struct WorkflowInstance {
  std::string name;
  std::string shape;       ///< generator shape label ("" for imports)
  std::uint64_t seed = 0;  ///< generator seed (0 for imports)
  std::vector<InstanceTask> tasks;

  /// Structural validation: non-empty unique ids, existing parents, no
  /// self/duplicate parents, acyclic, sizes >= 0, runtimes >= 0, cores > 0,
  /// every file produced by at most one task and size-consistent across
  /// references, and every consumed produced-file's producer is a parent.
  Result<void> validate() const;

  /// Canonical JSON document (key-sorted, 2-space pretty).
  json::Value to_json() const;
};

/// Serialize canonically. Same instance -> same bytes, always.
std::string export_instance(const WorkflowInstance& instance);

/// Parse + validate a JSON workflow instance. All errors — syntactic and
/// semantic — carry the 1-based line number of the offending construct.
Result<WorkflowInstance> import_instance(std::string_view text);

/// Convenience: read and import a file (errors prefixed with the path).
Result<WorkflowInstance> import_instance_file(const std::string& path);

}  // namespace vine::wfgen
