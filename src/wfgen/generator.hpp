// Seeded, deterministic workflow generator (vine::wfgen): WorkloadSpec ->
// WorkflowInstance. Shapes cover the structures the paper's four apps only
// sample — chains, broadcast fan-out trees, fan-in reduction trees,
// diamonds, fork-join ladders — plus Montage- and epigenomics-like recipes
// (the classic WfCommons families: cross-linked mosaic levels, parallel
// per-chunk pipelines into a merge). Task durations and file sizes draw
// from heavy-tailed distributions (lognormal / Pareto) so a handful of
// elephant tasks and files dominate, as in production traces.
//
// Determinism contract: generate() consumes only the spec and a vine::Rng
// seeded from spec.seed, in a fixed draw order. The same spec therefore
// yields the same WorkflowInstance — and, through the canonical exporter,
// byte-identical JSON — on every platform. All durations and sizes are
// clamped strictly positive, every generated DAG is acyclic, and every
// task has a path to the single sink task.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "wfgen/instance.hpp"

namespace vine::wfgen {

/// DAG shape families.
enum class Shape : std::uint8_t {
  chain,        ///< linear pipeline of `tasks` stages
  fanout,       ///< broadcast tree: each level's output feeds `fan` children
  fanin,        ///< reduction tree: `width` leaves merged `fan`-way to a root
  diamond,      ///< source -> `width` parallel transforms -> sink
  forkjoin,     ///< `depth` repeated (fork to `width`, join) stages
  montage,      ///< mosaic recipe: project -> overlap diffs -> fit ->
                ///< background correction -> mosaic -> shrink
  epigenomics,  ///< split -> `width` pipelines of `depth` stages -> merge ->
                ///< index
};

const char* to_string(Shape shape);
std::optional<Shape> shape_from_string(std::string_view name);

/// All shape families, in canonical order (workbench/default matrices).
inline constexpr Shape kAllShapes[] = {
    Shape::chain,   Shape::fanout,  Shape::fanin,      Shape::diamond,
    Shape::forkjoin, Shape::montage, Shape::epigenomics,
};

/// A sampling distribution for durations (seconds) or file sizes (bytes).
/// Samples are clamped to [min, max] (max <= 0 means unbounded above) and
/// the generator additionally floors them strictly positive.
struct Dist {
  enum class Kind : std::uint8_t {
    constant,     ///< always `a`
    uniform,      ///< uniform in [a, b]
    exponential,  ///< mean `a`
    lognormal,    ///< exp(Normal(mu = a, sigma = b)) — heavy right tail
    pareto,       ///< xm = a, alpha = b — power-law tail (alpha <= 2: wild)
  };
  Kind kind = Kind::lognormal;
  double a = 1.0;
  double b = 0.0;
  double min = 0.0;
  double max = 0.0;

  double sample(Rng& rng) const;

  static Dist constant(double v) {
    return {Kind::constant, v, 0, 0, 0};
  }
  static Dist uniform(double lo, double hi) {
    return {Kind::uniform, lo, hi, 0, 0};
  }
  static Dist exponential(double mean) {
    return {Kind::exponential, mean, 0, 0, 0};
  }
  static Dist lognormal(double mu, double sigma, double lo = 0, double hi = 0) {
    return {Kind::lognormal, mu, sigma, lo, hi};
  }
  static Dist pareto(double xm, double alpha, double lo = 0, double hi = 0) {
    return {Kind::pareto, xm, alpha, lo, hi};
  }
};

/// Everything the generator consumes. Shape parameters are interpreted per
/// family (see the Shape comments); unused ones are ignored.
struct WorkloadSpec {
  Shape shape = Shape::chain;
  std::uint64_t seed = 1;

  int tasks = 12;  ///< chain length; also caps fanout tree growth
  int width = 6;   ///< parallel branches (fanin leaves, diamond/forkjoin
                   ///< width, montage tiles, epigenomics pipelines)
  int depth = 3;   ///< levels (fanout tree, forkjoin stages, epigenomics
                   ///< per-pipeline stages)
  int fan = 3;     ///< tree arity for fanout/fanin

  double cores = 1.0;  ///< cores per task

  /// Task runtime seconds: lognormal around ~20 s with a heavy tail.
  Dist duration = Dist::lognormal(3.0, 1.0, 0.05, 7200);
  /// External (workflow-input) file sizes: Pareto, megabyte median.
  Dist input_bytes = Dist::pareto(2e6, 1.3, 1e4, 4e9);
  /// Produced (intermediate/output) file sizes: Pareto, heavier tail.
  Dist output_bytes = Dist::pareto(4e6, 1.2, 1e4, 4e9);

  /// Instance name; empty -> "<shape>-s<seed>".
  std::string name;
};

/// Generate the instance for `spec`. Pure function of the spec.
WorkflowInstance generate(const WorkloadSpec& spec);

}  // namespace vine::wfgen
