#include "wfgen/instance.hpp"

#include <algorithm>
#include <charconv>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace vine::wfgen {

namespace {

/// Validation core shared by validate() and the importer. On failure,
/// `locus` (when non-null) receives the token — a task id or file name —
/// closest to the violation, so the importer can map it to a source line.
Result<void> validate_impl(const WorkflowInstance& inst, std::string* locus) {
  auto fail = [&](const std::string& token, const std::string& msg) -> Result<void> {
    if (locus) *locus = token;
    return Error{Errc::invalid_argument, msg};
  };

  if (inst.tasks.empty()) {
    return fail("tasks", "instance has no tasks");
  }

  std::map<std::string, std::size_t, std::less<>> by_id;
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    const InstanceTask& t = inst.tasks[i];
    if (t.id.empty()) {
      return fail("id", "task " + std::to_string(i) + " has an empty id");
    }
    if (!by_id.emplace(t.id, i).second) {
      return fail(t.id, "duplicate task id \"" + t.id + "\"");
    }
  }

  // File book-keeping: producer per file name, one consistent size per name.
  std::map<std::string, std::string, std::less<>> producer;  // file -> task id
  std::map<std::string, std::int64_t, std::less<>> size_of;
  auto check_file = [&](const InstanceTask& t, const InstanceFile& f,
                        const char* role) -> Result<void> {
    if (f.name.empty()) {
      return fail(t.id, "task \"" + t.id + "\" has an empty " + role +
                            " file name");
    }
    if (f.bytes < 0) {
      return fail(f.name, "file \"" + f.name + "\" of task \"" + t.id +
                              "\" has negative sizeInBytes " +
                              std::to_string(f.bytes));
    }
    auto [it, fresh] = size_of.emplace(f.name, f.bytes);
    if (!fresh && it->second != f.bytes) {
      return fail(f.name, "file \"" + f.name + "\" declared with conflicting "
                              "sizes " + std::to_string(it->second) + " and " +
                              std::to_string(f.bytes));
    }
    return Result<void>::success();
  };

  for (const InstanceTask& t : inst.tasks) {
    if (!(t.cores > 0)) {
      return fail(t.id, "task \"" + t.id + "\" has non-positive cores");
    }
    if (t.runtime_s < 0) {
      return fail(t.id, "task \"" + t.id + "\" has negative runtimeInSeconds");
    }
    std::set<std::string, std::less<>> seen_parents;
    for (const std::string& p : t.parents) {
      if (p == t.id) {
        return fail(t.id, "task \"" + t.id + "\" lists itself as a parent");
      }
      if (!by_id.count(p)) {
        return fail(p, "task \"" + t.id + "\" references unknown parent \"" +
                           p + "\"");
      }
      if (!seen_parents.insert(p).second) {
        return fail(t.id, "task \"" + t.id + "\" lists parent \"" + p +
                              "\" twice");
      }
    }
    std::set<std::string, std::less<>> seen_files;
    for (const InstanceFile& f : t.inputs) {
      if (auto ok = check_file(t, f, "input"); !ok) return ok;
      if (!seen_files.insert(f.name).second) {
        return fail(t.id, "task \"" + t.id + "\" consumes file \"" + f.name +
                              "\" twice");
      }
    }
    for (const InstanceFile& f : t.outputs) {
      if (auto ok = check_file(t, f, "output"); !ok) return ok;
      if (!seen_files.insert(f.name).second) {
        return fail(t.id, "task \"" + t.id + "\" declares file \"" + f.name +
                              "\" twice");
      }
      auto [it, fresh] = producer.emplace(f.name, t.id);
      if (!fresh) {
        return fail(f.name, "file \"" + f.name + "\" produced by both \"" +
                                it->second + "\" and \"" + t.id + "\"");
      }
    }
  }

  // Data-dependency consistency: consuming a produced file requires the
  // producer among the parents (pure-external inputs have no producer).
  for (const InstanceTask& t : inst.tasks) {
    for (const InstanceFile& f : t.inputs) {
      auto it = producer.find(f.name);
      if (it == producer.end()) continue;
      if (std::find(t.parents.begin(), t.parents.end(), it->second) ==
          t.parents.end()) {
        return fail(t.id, "task \"" + t.id + "\" consumes file \"" + f.name +
                              "\" produced by \"" + it->second +
                              "\" which is not among its parents");
      }
    }
  }

  // Acyclicity over the parent edges (Kahn). Any remainder is a cycle.
  std::map<std::string, int, std::less<>> indegree;
  std::map<std::string, std::vector<std::string>, std::less<>> children;
  for (const InstanceTask& t : inst.tasks) {
    indegree.emplace(t.id, static_cast<int>(t.parents.size()));
    for (const std::string& p : t.parents) children[p].push_back(t.id);
  }
  std::deque<std::string> frontier;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) frontier.push_back(id);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    std::string id = std::move(frontier.front());
    frontier.pop_front();
    ++visited;
    auto it = children.find(id);
    if (it == children.end()) continue;
    for (const std::string& c : it->second) {
      if (--indegree[c] == 0) frontier.push_back(c);
    }
  }
  if (visited != inst.tasks.size()) {
    // Report the first (in instance order) task stuck on the cycle.
    for (const InstanceTask& t : inst.tasks) {
      if (indegree[t.id] > 0) {
        return fail(t.id, "dependency cycle through task \"" + t.id + "\"");
      }
    }
  }
  return Result<void>::success();
}

json::Value file_to_json(const InstanceFile& f) {
  json::Object o;
  o["name"] = f.name;
  o["sizeInBytes"] = f.bytes;
  return json::Value(std::move(o));
}

/// 1-based line number of the first occurrence of `"token"` (as a quoted
/// JSON string) in `text`; falls back to the first occurrence of the bare
/// token, then to line 1. Pretty-printed instances put each task and file
/// on its own lines, so this lands on (or next to) the offending construct.
std::size_t line_of(std::string_view text, std::string_view token) {
  std::string quoted = "\"";
  quoted.append(token);
  quoted.push_back('"');
  std::size_t pos = text.find(quoted);
  if (pos == std::string_view::npos) pos = text.find(token);
  if (pos == std::string_view::npos) return 1;
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + pos, '\n'));
}

/// Line number for a json::parse failure ("... at offset N").
std::size_t line_of_parse_error(std::string_view text, const std::string& msg) {
  std::size_t at = msg.rfind("offset ");
  if (at == std::string::npos) return 1;
  std::size_t offset = 0;
  const char* begin = msg.data() + at + 7;
  auto [ptr, ec] = std::from_chars(begin, msg.data() + msg.size(), offset);
  if (ec != std::errc() || offset > text.size()) return 1;
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

Result<std::vector<InstanceFile>> parse_files(const json::Value& task,
                                              const char* key,
                                              const std::string& task_id) {
  std::vector<InstanceFile> out;
  const json::Value* arr = task.find(key);
  if (!arr) return out;
  if (!arr->is_array()) {
    return Error{Errc::parse_error,
                 "task \"" + task_id + "\": " + key + " is not an array"};
  }
  for (const json::Value& f : arr->as_array()) {
    if (!f.is_object()) {
      return Error{Errc::parse_error,
                   "task \"" + task_id + "\": " + key + " entry is not an object"};
    }
    InstanceFile file;
    const json::Value* name = f.find("name");
    if (!name || !name->is_string()) {
      return Error{Errc::parse_error, "task \"" + task_id + "\": " + key +
                                          " entry is missing a string name"};
    }
    file.name = name->as_string();
    const json::Value* size = f.find("sizeInBytes");
    if (!size || !size->is_number()) {
      return Error{Errc::parse_error, "file \"" + file.name +
                                          "\" is missing numeric sizeInBytes"};
    }
    file.bytes = size->as_int();
    out.push_back(std::move(file));
  }
  return out;
}

}  // namespace

Result<void> WorkflowInstance::validate() const {
  return validate_impl(*this, nullptr);
}

json::Value WorkflowInstance::to_json() const {
  json::Object doc;
  doc["format"] = kInstanceFormat;
  doc["version"] = kInstanceVersion;
  doc["name"] = name;
  if (!shape.empty()) doc["shape"] = shape;
  if (seed != 0) doc["seed"] = static_cast<std::int64_t>(seed);
  json::Array tasks_json;
  for (const InstanceTask& t : tasks) {
    json::Object o;
    o["id"] = t.id;
    if (!t.category.empty()) o["category"] = t.category;
    o["runtimeInSeconds"] = t.runtime_s;
    o["cores"] = t.cores;
    json::Array parents;
    for (const std::string& p : t.parents) parents.emplace_back(p);
    o["parents"] = json::Value(std::move(parents));
    json::Array in, out;
    for (const InstanceFile& f : t.inputs) in.push_back(file_to_json(f));
    for (const InstanceFile& f : t.outputs) out.push_back(file_to_json(f));
    o["inputFiles"] = json::Value(std::move(in));
    o["outputFiles"] = json::Value(std::move(out));
    tasks_json.emplace_back(std::move(o));
  }
  doc["tasks"] = json::Value(std::move(tasks_json));
  return json::Value(std::move(doc));
}

std::string export_instance(const WorkflowInstance& instance) {
  return instance.to_json().dump_pretty() + "\n";
}

Result<WorkflowInstance> import_instance(std::string_view text) {
  auto at_line = [&](std::size_t line, const std::string& msg) {
    return Error{Errc::parse_error, "line " + std::to_string(line) + ": " + msg};
  };

  auto parsed = json::parse(text);
  if (!parsed) {
    return at_line(line_of_parse_error(text, parsed.error().message),
                   parsed.error().message);
  }
  const json::Value& doc = *parsed;
  if (!doc.is_object()) {
    return at_line(1, "instance document is not a JSON object");
  }
  if (const json::Value* fmt = doc.find("format");
      fmt && (!fmt->is_string() || fmt->as_string() != kInstanceFormat)) {
    return at_line(line_of(text, "format"),
                   "unknown format (want \"" + std::string(kInstanceFormat) +
                       "\")");
  }
  const json::Value* version = doc.find("version");
  if (!version || !version->is_int()) {
    return at_line(1, "missing integer \"version\" field");
  }
  if (version->as_int() != kInstanceVersion) {
    return at_line(line_of(text, "version"),
                   "unsupported instance version " +
                       std::to_string(version->as_int()) + " (have " +
                       std::to_string(kInstanceVersion) + ")");
  }

  WorkflowInstance inst;
  inst.name = doc.get_string("name");
  inst.shape = doc.get_string("shape");
  inst.seed = static_cast<std::uint64_t>(doc.get_int("seed"));

  const json::Value* tasks = doc.find("tasks");
  if (!tasks || !tasks->is_array()) {
    return at_line(1, "missing \"tasks\" array");
  }
  for (const json::Value& tj : tasks->as_array()) {
    if (!tj.is_object()) {
      return at_line(line_of(text, "tasks"), "tasks entry is not an object");
    }
    InstanceTask t;
    const json::Value* id = tj.find("id");
    if (!id || !id->is_string() ) {
      return at_line(line_of(text, "tasks"),
                     "task entry " + std::to_string(inst.tasks.size()) +
                         " is missing a string id");
    }
    t.id = id->as_string();
    t.category = tj.get_string("category");
    t.runtime_s = tj.get_double("runtimeInSeconds", 1.0);
    t.cores = tj.get_double("cores", 1.0);
    if (const json::Value* parents = tj.find("parents")) {
      if (!parents->is_array()) {
        return at_line(line_of(text, t.id),
                       "task \"" + t.id + "\": parents is not an array");
      }
      for (const json::Value& p : parents->as_array()) {
        if (!p.is_string()) {
          return at_line(line_of(text, t.id),
                         "task \"" + t.id + "\": parent id is not a string");
        }
        t.parents.push_back(p.as_string());
      }
    }
    auto in = parse_files(tj, "inputFiles", t.id);
    if (!in) return at_line(line_of(text, t.id), in.error().message);
    t.inputs = std::move(*in);
    auto out = parse_files(tj, "outputFiles", t.id);
    if (!out) return at_line(line_of(text, t.id), out.error().message);
    t.outputs = std::move(*out);
    inst.tasks.push_back(std::move(t));
  }

  std::string locus;
  if (auto ok = validate_impl(inst, &locus); !ok) {
    return at_line(line_of(text, locus), ok.error().message);
  }
  return inst;
}

Result<WorkflowInstance> import_instance_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{Errc::io_error, "cannot open instance file: " + path};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = import_instance(buf.str());
  if (!result) {
    return Error{result.error().code, path + ": " + result.error().message};
  }
  return result;
}

}  // namespace vine::wfgen
