#include "wfgen/generator.hpp"

#include <algorithm>
#include <cmath>

namespace vine::wfgen {

const char* to_string(Shape shape) {
  switch (shape) {
    case Shape::chain: return "chain";
    case Shape::fanout: return "fanout";
    case Shape::fanin: return "fanin";
    case Shape::diamond: return "diamond";
    case Shape::forkjoin: return "forkjoin";
    case Shape::montage: return "montage";
    case Shape::epigenomics: return "epigenomics";
  }
  return "unknown";
}

std::optional<Shape> shape_from_string(std::string_view name) {
  for (Shape s : kAllShapes) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

double Dist::sample(Rng& rng) const {
  double v = 0;
  switch (kind) {
    case Kind::constant:
      v = a;
      break;
    case Kind::uniform:
      v = rng.uniform(a, b);
      break;
    case Kind::exponential:
      v = rng.exponential(a);
      break;
    case Kind::lognormal:
      v = std::exp(rng.normal(a, b));
      break;
    case Kind::pareto: {
      // Inverse transform: xm / U^(1/alpha), U in (0, 1].
      double u = 1.0 - rng.uniform();
      v = a / std::pow(u, 1.0 / std::max(b, 1e-9));
      break;
    }
  }
  if (min > 0) v = std::max(v, min);
  if (max > 0) v = std::min(v, max);
  return v;
}

namespace {

/// Builder holding the draw-order discipline: durations and sizes are
/// sampled exactly when a task/file is created, in construction order, so
/// the byte-for-byte determinism contract is the construction order itself.
class Builder {
 public:
  explicit Builder(const WorkloadSpec& spec) : spec_(spec), rng_(spec.seed) {
    inst_.shape = to_string(spec.shape);
    inst_.seed = spec.seed;
    inst_.name = spec.name.empty()
                     ? std::string(to_string(spec.shape)) + "-s" +
                           std::to_string(spec.seed)
                     : spec.name;
  }

  /// New task with a freshly sampled duration. Returns its index.
  std::size_t task(const std::string& category) {
    InstanceTask t;
    t.id = "t" + std::to_string(inst_.tasks.size() + 1);
    t.category = category;
    t.runtime_s = positive(spec_.duration.sample(rng_));
    t.cores = spec_.cores > 0 ? spec_.cores : 1.0;
    inst_.tasks.push_back(std::move(t));
    return inst_.tasks.size() - 1;
  }

  /// Attach a fresh external input (workflow input file) to `t`.
  void external_input(std::size_t t) {
    InstanceFile f;
    f.name = "ext" + std::to_string(++next_ext_);
    f.bytes = bytes(spec_.input_bytes);
    inst_.tasks[t].inputs.push_back(std::move(f));
  }

  /// Declare a fresh output on `t`; returns the file (by value, for linking).
  InstanceFile output(std::size_t t) {
    InstanceFile f;
    f.name = inst_.tasks[t].id + "-out" +
             std::to_string(inst_.tasks[t].outputs.size() + 1);
    f.bytes = bytes(spec_.output_bytes);
    inst_.tasks[t].outputs.push_back(f);
    return f;
  }

  /// Data edge: `child` consumes `file` produced by `parent`.
  void consume(std::size_t child, std::size_t parent, const InstanceFile& file) {
    InstanceTask& c = inst_.tasks[child];
    const std::string& pid = inst_.tasks[parent].id;
    if (std::find(c.parents.begin(), c.parents.end(), pid) == c.parents.end()) {
      c.parents.push_back(pid);
    }
    c.inputs.push_back(file);
  }

  WorkflowInstance take() { return std::move(inst_); }

 private:
  std::int64_t bytes(const Dist& dist) {
    return std::max<std::int64_t>(1, std::llround(dist.sample(rng_)));
  }
  static double positive(double v) { return std::max(v, 1e-3); }

  const WorkloadSpec& spec_;
  Rng rng_;
  WorkflowInstance inst_;
  int next_ext_ = 0;
};

void gen_chain(const WorkloadSpec& spec, Builder& b) {
  const int n = std::max(2, spec.tasks);
  std::size_t prev = b.task("stage1");
  b.external_input(prev);
  InstanceFile carried = b.output(prev);
  for (int i = 1; i < n; ++i) {
    std::size_t t = b.task("stage" + std::to_string(i + 1));
    b.consume(t, prev, carried);
    carried = b.output(t);
    prev = t;
  }
}

/// Broadcast tree: the root's single output is consumed by `fan` children,
/// each child's output by `fan` grandchildren, for `depth` levels (total
/// capped by spec.tasks); a gather sink consumes every leaf output.
void gen_fanout(const WorkloadSpec& spec, Builder& b) {
  const int fan = std::max(2, spec.fan);
  const int depth = std::max(1, spec.depth);
  const int cap = std::max(4, spec.tasks);

  std::size_t root = b.task("root");
  b.external_input(root);
  std::vector<std::pair<std::size_t, InstanceFile>> level = {
      {root, b.output(root)}};
  int total = 1;
  for (int d = 0; d < depth && total < cap; ++d) {
    std::vector<std::pair<std::size_t, InstanceFile>> next;
    for (const auto& [parent, file] : level) {
      bool expanded = false;
      for (int k = 0; k < fan && total < cap; ++k) {
        std::size_t t = b.task("expand" + std::to_string(d + 1));
        b.consume(t, parent, file);
        next.emplace_back(t, b.output(t));
        ++total;
        expanded = true;
      }
      // The task cap cut this node off mid-level: carry it forward so the
      // gather sink still consumes its output (single-sink invariant).
      if (!expanded) next.emplace_back(parent, file);
    }
    level = std::move(next);
  }
  std::size_t sink = b.task("gather");
  for (const auto& [parent, file] : level) b.consume(sink, parent, file);
  b.output(sink);
}

/// Reduction tree: `width` leaves (each with an external input) merged
/// `fan`-way per level down to a single root, the natural sink.
void gen_fanin(const WorkloadSpec& spec, Builder& b) {
  const int fan = std::max(2, spec.fan);
  const int width = std::max(2, spec.width);

  std::vector<std::pair<std::size_t, InstanceFile>> level;
  for (int i = 0; i < width; ++i) {
    std::size_t t = b.task("leaf");
    b.external_input(t);
    level.emplace_back(t, b.output(t));
  }
  int depth = 0;
  while (level.size() > 1) {
    ++depth;
    std::vector<std::pair<std::size_t, InstanceFile>> next;
    for (std::size_t i = 0; i < level.size(); i += fan) {
      std::size_t t = b.task("merge" + std::to_string(depth));
      for (std::size_t j = i; j < std::min(level.size(), i + fan); ++j) {
        b.consume(t, level[j].first, level[j].second);
      }
      next.emplace_back(t, b.output(t));
    }
    level = std::move(next);
  }
}

void gen_diamond(const WorkloadSpec& spec, Builder& b) {
  const int width = std::max(2, spec.width);
  std::size_t source = b.task("source");
  b.external_input(source);
  InstanceFile common = b.output(source);
  std::vector<std::pair<std::size_t, InstanceFile>> mids;
  for (int i = 0; i < width; ++i) {
    std::size_t t = b.task("transform");
    b.consume(t, source, common);
    mids.emplace_back(t, b.output(t));
  }
  std::size_t sink = b.task("sink");
  for (const auto& [t, file] : mids) b.consume(sink, t, file);
  b.output(sink);
}

/// `depth` repeated fork/join stages; each join's output seeds the next fork.
void gen_forkjoin(const WorkloadSpec& spec, Builder& b) {
  const int width = std::max(2, spec.width);
  const int depth = std::max(1, spec.depth);
  std::size_t prev = b.task("seed");
  b.external_input(prev);
  InstanceFile carried = b.output(prev);
  for (int d = 0; d < depth; ++d) {
    std::vector<std::pair<std::size_t, InstanceFile>> forks;
    for (int i = 0; i < width; ++i) {
      std::size_t t = b.task("fork" + std::to_string(d + 1));
      b.consume(t, prev, carried);
      forks.emplace_back(t, b.output(t));
    }
    std::size_t join = b.task("join" + std::to_string(d + 1));
    for (const auto& [t, file] : forks) b.consume(join, t, file);
    carried = b.output(join);
    prev = join;
  }
}

/// Montage-like mosaic: `width` project tasks (one tile each), overlap
/// difference tasks on adjacent tile pairs (the cross links), a fit
/// aggregation, per-tile background correction consuming both the fit and
/// the tile, the mosaic assembly, and a final shrink (the sink).
void gen_montage(const WorkloadSpec& spec, Builder& b) {
  const int width = std::max(2, spec.width);

  std::vector<std::size_t> projects;
  std::vector<InstanceFile> tiles;
  for (int i = 0; i < width; ++i) {
    std::size_t t = b.task("project");
    b.external_input(t);
    projects.push_back(t);
    tiles.push_back(b.output(t));
  }
  std::vector<std::pair<std::size_t, InstanceFile>> diffs;
  for (int i = 0; i + 1 < width; ++i) {
    std::size_t diff = b.task("diff");
    b.consume(diff, projects[i], tiles[i]);
    b.consume(diff, projects[i + 1], tiles[i + 1]);
    diffs.emplace_back(diff, b.output(diff));
  }
  std::size_t fit = b.task("fit");
  for (const auto& [diff, file] : diffs) b.consume(fit, diff, file);
  InstanceFile model = b.output(fit);
  std::vector<std::pair<std::size_t, InstanceFile>> corrected;
  for (int i = 0; i < width; ++i) {
    std::size_t bg = b.task("background");
    b.consume(bg, fit, model);
    b.consume(bg, projects[i], tiles[i]);
    corrected.emplace_back(bg, b.output(bg));
  }
  std::size_t mosaic = b.task("mosaic");
  for (const auto& [bg, file] : corrected) b.consume(mosaic, bg, file);
  std::size_t shrink = b.task("shrink");
  b.consume(shrink, mosaic, b.output(mosaic));
  b.output(shrink);
}

/// Epigenomics-like: one split task scatters `width` chunks; each chunk
/// runs a `depth`-stage pipeline; a merge gathers the pipeline tails and an
/// index task (the sink) finishes.
void gen_epigenomics(const WorkloadSpec& spec, Builder& b) {
  const int width = std::max(2, spec.width);
  const int depth = std::max(2, spec.depth);

  std::size_t split = b.task("split");
  b.external_input(split);
  std::vector<std::pair<std::size_t, InstanceFile>> tails;
  for (int i = 0; i < width; ++i) {
    InstanceFile chunk = b.output(split);
    std::size_t prev = split;
    for (int d = 0; d < depth; ++d) {
      std::size_t t = b.task("pipe" + std::to_string(d + 1));
      b.consume(t, prev, chunk);
      chunk = b.output(t);
      prev = t;
    }
    tails.emplace_back(prev, chunk);
  }
  std::size_t merge = b.task("merge");
  for (const auto& [tail, file] : tails) b.consume(merge, tail, file);
  std::size_t index = b.task("index");
  b.consume(index, merge, b.output(merge));
  b.output(index);
}

}  // namespace

WorkflowInstance generate(const WorkloadSpec& spec) {
  Builder b(spec);
  switch (spec.shape) {
    case Shape::chain: gen_chain(spec, b); break;
    case Shape::fanout: gen_fanout(spec, b); break;
    case Shape::fanin: gen_fanin(spec, b); break;
    case Shape::diamond: gen_diamond(spec, b); break;
    case Shape::forkjoin: gen_forkjoin(spec, b); break;
    case Shape::montage: gen_montage(spec, b); break;
    case Shape::epigenomics: gen_epigenomics(spec, b); break;
  }
  return b.take();
}

}  // namespace vine::wfgen
