#include "wfgen/replay.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <vector>

#include "common/uuid.hpp"
#include "core/taskvine.hpp"

namespace vine::wfgen {

namespace {

/// Data edges of `inst` resolved once: producer index per file name, and
/// per task the parent edges that share no file (pure control edges, backed
/// by a synthetic 1-byte file named "ctl-<parent>-<child>").
struct EdgePlan {
  std::map<std::string, std::size_t, std::less<>> producer;  // file -> task idx
  std::map<std::string, std::size_t, std::less<>> by_id;     // id -> task idx
  /// (child idx, parent idx) pairs needing a synthetic control file.
  std::vector<std::pair<std::size_t, std::size_t>> control_edges;
};

EdgePlan plan_edges(const WorkflowInstance& inst) {
  EdgePlan plan;
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    plan.by_id.emplace(inst.tasks[i].id, i);
    for (const InstanceFile& f : inst.tasks[i].outputs) {
      plan.producer.emplace(f.name, i);
    }
  }
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    const InstanceTask& t = inst.tasks[i];
    for (const std::string& pid : t.parents) {
      std::size_t p = plan.by_id.at(pid);
      bool shared = false;
      for (const InstanceFile& f : t.inputs) {
        auto it = plan.producer.find(f.name);
        if (it != plan.producer.end() && it->second == p) {
          shared = true;
          break;
        }
      }
      if (!shared) plan.control_edges.emplace_back(i, p);
    }
  }
  return plan;
}

std::string control_file_name(const WorkflowInstance& inst, std::size_t child,
                              std::size_t parent) {
  return "ctl-" + inst.tasks[parent].id + "-" + inst.tasks[child].id;
}

std::string pin_name(std::size_t task_idx, int workers) {
  return "w" + std::to_string(task_idx % static_cast<std::size_t>(workers));
}

// ------------------------------------------------------------- sim half ----

Result<ReplayResult> replay_sim(const WorkflowInstance& inst,
                                const ReplayOptions& opt) {
  reseed_uuid_generator(opt.seed);

  vinesim::SimConfig cfg;
  cfg.seed = opt.seed;
  cfg.sched = opt.sched;
  cfg.redundancy = opt.redundancy;
  if (opt.trace) cfg.trace = opt.trace;

  vinesim::ClusterSim cs(cfg);
  for (int w = 0; w < opt.workers; ++w) {
    cs.add_worker("w" + std::to_string(w), 0, opt.worker_cores);
  }

  const EdgePlan edges = plan_edges(inst);
  std::map<std::string, vinesim::SimFile*, std::less<>> files;

  // Declare every file once, in instance order: produced files are temps
  // sized by their declaration; never-produced inputs are manager pushes.
  for (const InstanceTask& t : inst.tasks) {
    for (const InstanceFile& f : t.outputs) {
      files.emplace(f.name, cs.declare_file(f.name, 0,
                                            vinesim::SimFile::Origin::temp));
    }
  }
  for (const InstanceTask& t : inst.tasks) {
    for (const InstanceFile& f : t.inputs) {
      if (files.count(f.name)) continue;
      files.emplace(f.name,
                    cs.declare_file(f.name, std::max<std::int64_t>(1, f.bytes),
                                    vinesim::SimFile::Origin::manager));
    }
  }
  for (const auto& [child, parent] : edges.control_edges) {
    std::string name = control_file_name(inst, child, parent);
    files.emplace(name,
                  cs.declare_file(name, 0, vinesim::SimFile::Origin::temp));
  }

  std::vector<vinesim::SimTask*> sim_tasks;
  sim_tasks.reserve(inst.tasks.size());
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    const InstanceTask& t = inst.tasks[i];
    auto* st = cs.add_task(t.category.empty() ? "task" : t.category,
                           std::max(t.runtime_s, 1e-6),
                           std::min(t.cores, opt.worker_cores));
    if (opt.pin_round_robin) st->pin_worker = pin_name(i, opt.workers);
    for (const InstanceFile& f : t.inputs) st->inputs.push_back(files.at(f.name));
    for (const InstanceFile& f : t.outputs) {
      st->outputs.push_back({files.at(f.name), std::max<std::int64_t>(1, f.bytes)});
    }
    sim_tasks.push_back(st);
  }
  for (const auto& [child, parent] : edges.control_edges) {
    vinesim::SimFile* f = files.at(control_file_name(inst, child, parent));
    sim_tasks[parent]->outputs.push_back({f, 1});
    sim_tasks[child]->inputs.push_back(f);
  }

  if (opt.faults) cs.apply_fault_plan(*opt.faults);

  ReplayResult result;
  result.makespan = cs.run();
  result.sim_stats = cs.stats();
  result.tasks_done = cs.stats().tasks_done;
  result.tasks_unfinished = cs.stats().tasks_unfinished;
  for (const auto& [name, file] : files) result.cache_names[name] = name;
  return result;
}

// --------------------------------------------------------- runtime half ----

/// Sandbox-safe name: the logical file name with anything outside
/// [A-Za-z0-9._-] replaced by '_' (names are unique per task already).
std::string sandbox_name(const std::string& logical) {
  std::string out = logical;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

Result<ReplayResult> replay_runtime(const WorkflowInstance& inst,
                                    const ReplayOptions& opt) {
  const EdgePlan edges = plan_edges(inst);

  LocalClusterConfig cc;
  cc.workers = opt.workers;
  cc.per_worker = Resources{.cores = opt.worker_cores,
                            .memory_mb = 8000,
                            .disk_mb = 50000,
                            .gpus = 0};
  cc.manager.sched = opt.sched;
  cc.manager.redundancy = opt.redundancy;
  cc.trace = opt.trace;
  auto cluster = LocalCluster::create(std::move(cc));
  if (!cluster.ok()) return cluster.error();
  Manager& m = (*cluster)->manager();

  // Synthetic control-edge files ride per (child, parent) pair.
  std::map<std::string, std::vector<std::string>, std::less<>> extra_outputs;
  std::map<std::string, std::vector<std::string>, std::less<>> extra_inputs;
  std::map<std::string, FileRef, std::less<>> refs;
  for (const auto& [child, parent] : edges.control_edges) {
    std::string name = control_file_name(inst, child, parent);
    refs.emplace(name, m.declare_temp());
    extra_outputs[inst.tasks[parent].id].push_back(name);
    extra_inputs[inst.tasks[child].id].push_back(name);
  }
  for (const InstanceTask& t : inst.tasks) {
    for (const InstanceFile& f : t.outputs) refs.emplace(f.name, m.declare_temp());
  }
  for (const InstanceTask& t : inst.tasks) {
    for (const InstanceFile& f : t.inputs) {
      if (refs.count(f.name)) continue;
      // Buffers are content-addressed, so seed each with its logical name:
      // two distinct external inputs must never collapse into one cache
      // object, or the halves' transfer accounting diverges.
      auto bytes = static_cast<std::size_t>(std::clamp<std::int64_t>(
          f.bytes, 1, opt.runtime_bytes_cap));
      std::string content = f.name + ":";
      content.resize(std::max(bytes, content.size()), 'x');
      refs.emplace(f.name, m.declare_buffer(std::move(content)));
    }
  }

  ReplayResult result;

  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    const InstanceTask& t = inst.tasks[i];
    // The command materializes each declared output at (capped) size; the
    // runtime stages inputs regardless of whether the command reads them.
    std::string command;
    auto emit_output = [&](const std::string& name, std::int64_t bytes) {
      if (!command.empty()) command += " && ";
      command += "head -c " +
                 std::to_string(std::clamp<std::int64_t>(
                     bytes, 1, opt.runtime_bytes_cap)) +
                 " /dev/zero > " + sandbox_name(name);
    };
    for (const InstanceFile& f : t.outputs) emit_output(f.name, f.bytes);
    if (auto it = extra_outputs.find(t.id); it != extra_outputs.end()) {
      for (const std::string& name : it->second) emit_output(name, 1);
    }
    if (command.empty()) command = "true";

    TaskBuilder builder(command);
    builder.cores(std::min(t.cores, opt.worker_cores));
    for (const InstanceFile& f : t.inputs) {
      builder.input(refs.at(f.name), sandbox_name(f.name));
    }
    if (auto it = extra_inputs.find(t.id); it != extra_inputs.end()) {
      for (const std::string& name : it->second) {
        builder.input(refs.at(name), sandbox_name(name));
      }
    }
    for (const InstanceFile& f : t.outputs) {
      builder.output(refs.at(f.name), sandbox_name(f.name));
    }
    if (auto it = extra_outputs.find(t.id); it != extra_outputs.end()) {
      for (const std::string& name : it->second) {
        builder.output(refs.at(name), sandbox_name(name));
      }
    }
    if (opt.pin_round_robin) builder.pin_to_worker(pin_name(i, opt.workers));
    if (auto ok = m.submit(builder.build()); !ok.ok()) {
      return Error{ok.error().code,
                   "submit of task \"" + t.id + "\" failed: " +
                       ok.error().message};
    }
  }

  // Temp cache names are assigned at submit; read them only now.
  for (const auto& [name, ref] : refs) result.cache_names[name] = ref->cache_name;

  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    auto r = m.wait(std::chrono::milliseconds(opt.runtime_wait_ms));
    if (!r.ok()) {
      result.tasks_unfinished =
          static_cast<int>(inst.tasks.size()) - result.tasks_done;
      return Error{r.error().code, "replay wait failed after " +
                                       std::to_string(result.tasks_done) +
                                       " tasks: " + r.error().message};
    }
    if (!r->ok()) {
      return Error{Errc::task_failed, "task " + std::to_string(r->id) +
                                          " failed: " + r->error_message};
    }
    ++result.tasks_done;
  }
  m.end_workflow();
  (*cluster)->shutdown();
  return result;
}

}  // namespace

Result<ReplayResult> run_workload(const WorkflowInstance& instance,
                                  const ReplayOptions& options) {
  if (auto ok = instance.validate(); !ok.ok()) {
    return Error{ok.error().code,
                 "invalid instance \"" + instance.name + "\": " +
                     ok.error().message};
  }
  if (options.workers <= 0 || options.worker_cores <= 0) {
    return Error{Errc::invalid_argument, "replay needs workers > 0 with cores"};
  }
  return options.backend == Backend::sim ? replay_sim(instance, options)
                                         : replay_runtime(instance, options);
}

Result<ReplayResult> run_workload_json(std::string_view instance_json,
                                       const ReplayOptions& options) {
  auto inst = import_instance(instance_json);
  if (!inst.ok()) return inst.error();
  return run_workload(*inst, options);
}

}  // namespace vine::wfgen
