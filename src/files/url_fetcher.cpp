#include "files/url_fetcher.hpp"

#include <sys/stat.h>

#include <filesystem>

#include "common/strings.hpp"
#include "fsutil/fsutil.hpp"

namespace vine {

namespace fs = std::filesystem;

Result<std::string> FileUrlFetcher::path_from_url(const std::string& url) {
  constexpr std::string_view kScheme = "file://";
  if (!starts_with(url, kScheme)) {
    return Error{Errc::invalid_argument, "unsupported URL scheme: " + url};
  }
  std::string path = url.substr(kScheme.size());
  if (path.empty() || path.front() != '/') {
    return Error{Errc::invalid_argument, "file URL must be absolute: " + url};
  }
  return path;
}

Result<UrlMetadata> FileUrlFetcher::head(const std::string& url) {
  VINE_TRY(std::string path, path_from_url(url));
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return Error{Errc::not_found, "no such object: " + url};
  }
  UrlMetadata meta;
  // Synthesize what a web server would send: ETag from inode identity and
  // size, Last-Modified from mtime. No Content-MD5 (rare in the wild too),
  // which exercises the paper's tier-2 naming path.
  meta.etag = std::to_string(st.st_dev) + "-" + std::to_string(st.st_ino) + "-" +
              std::to_string(st.st_size);
  meta.last_modified = std::to_string(st.st_mtime);
  meta.size = static_cast<std::int64_t>(st.st_size);
  return meta;
}

Result<std::string> FileUrlFetcher::fetch(const std::string& url) {
  VINE_TRY(std::string path, path_from_url(url));
  auto content = read_file(path);
  if (!content.ok()) {
    return Error{Errc::not_found, "cannot fetch " + url + ": " + content.error().message};
  }
  return std::move(content).value();
}

void MemoryUrlFetcher::put(const std::string& url, std::string content,
                           std::optional<std::string> content_md5,
                           std::optional<std::string> etag,
                           std::optional<std::string> last_modified) {
  MutexLock lock(mutex_);
  Entry e;
  e.meta.content_md5 = std::move(content_md5);
  e.meta.etag = std::move(etag);
  e.meta.last_modified = std::move(last_modified);
  e.meta.size = static_cast<std::int64_t>(content.size());
  e.content = std::move(content);
  objects_[url] = std::move(e);
}

Result<UrlMetadata> MemoryUrlFetcher::head(const std::string& url) {
  MutexLock lock(mutex_);
  auto it = objects_.find(url);
  if (it == objects_.end()) return Error{Errc::not_found, "404: " + url};
  ++it->second.heads;
  return it->second.meta;
}

Result<std::string> MemoryUrlFetcher::fetch(const std::string& url) {
  MutexLock lock(mutex_);
  auto it = objects_.find(url);
  if (it == objects_.end()) return Error{Errc::not_found, "404: " + url};
  ++it->second.fetches;
  return it->second.content;
}

int MemoryUrlFetcher::head_count(const std::string& url) const {
  MutexLock lock(mutex_);
  auto it = objects_.find(url);
  return it == objects_.end() ? 0 : it->second.heads;
}

int MemoryUrlFetcher::fetch_count(const std::string& url) const {
  MutexLock lock(mutex_);
  auto it = objects_.find(url);
  return it == objects_.end() ? 0 : it->second.fetches;
}

}  // namespace vine
