// Cache-name generation (paper §3.2).
//
// Scope of a name follows the declared cache lifetime:
//  - task/workflow lifetime: a random per-run name ("temp-xyz123"); the
//    manager guarantees uniqueness within the run and deletes the objects
//    at workflow end, so collisions with future runs are impossible.
//  - worker lifetime: a perpetually unique content-derived name, so that a
//    future workflow (possibly under a different manager) recognizes and
//    reuses the object:
//      LocalFile   -> MD5 of content; directories via the Merkle tree doc.
//      BufferFile  -> MD5 of the buffer.
//      URLFile     -> three tiers: header checksum; else hash of
//                     URL+ETag+Last-Modified; else hash of downloaded body.
//      MiniTask    -> Merkle hash of the producing task spec (command,
//                     resources, input cache names, recursively).
//      TempFile    -> hash of the producing task (same construction).
//
// Names carry a short type prefix ("md5-", "url-", "task-", "rnd-") for
// debuggability; uniqueness comes from the hash, the prefix just aids
// operators reading cache directories (cf. the paper's Figure 4 names).
#pragma once

#include <string>

#include "common/error.hpp"
#include "files/file_decl.hpp"
#include "files/url_fetcher.hpp"

namespace vine {

/// Random name for task/workflow-lifetime files: "rnd-<12 hex>".
std::string random_cache_name();

/// Content name of a local path (file or directory; Merkle for dirs).
Result<std::string> local_file_cache_name(const std::string& path);

/// Content name of an in-memory buffer.
std::string buffer_cache_name(std::string_view content);

/// URL naming per the three tiers. May issue head(); only downloads via
/// fetch() in the last-resort tier (all header fields absent).
Result<std::string> url_cache_name(const std::string& url, UrlFetcher& fetcher);

/// Name for the output of a producing task, given that task's canonical
/// hash (see task/task_hash.hpp): "task-<hash>[-<output name>]".
/// MiniTask outputs and TempFiles both use this construction; tasks with
/// multiple outputs disambiguate by the sandbox output name.
std::string task_output_cache_name(const std::string& task_hash,
                                   const std::string& output_name);

}  // namespace vine
