// File declarations: the data half of a TaskVine workflow graph (paper
// §2.3). Every byte a workflow touches is declared as a File of one of the
// subtypes below; the manager assigns each a unique cache name whose scope
// matches the declared cache lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace vine {

/// Manager-assigned identity of a declared file.
using FileId = std::uint64_t;

/// Manager-assigned identity of a task.
using TaskId = std::uint64_t;

/// Cache lifetime hints (paper §2.3):
/// - task:     consumed by one task only; discard right after.
/// - workflow: reusable within this workflow run; deleted at its end.
/// - worker:   reusable across workflows; kept while resources allow and
///             requires a content-derived (perpetually unique) cache name.
enum class CacheLevel : std::uint8_t { task = 0, workflow = 1, worker = 2 };

const char* cache_level_name(CacheLevel level) noexcept;

/// File subtypes (paper §2.3).
enum class FileKind : std::uint8_t {
  local,      ///< file/directory on the manager-visible shared filesystem
  buffer,     ///< literal bytes held in the application's memory
  url,        ///< remote object the worker downloads on demand
  temp,       ///< ephemeral in-cluster file: output of a task, never
              ///< materialized outside the cluster
  mini_task,  ///< produced on demand at the worker by running a MiniTask
};

const char* file_kind_name(FileKind kind) noexcept;

struct TaskSpec;  // defined in task/task_spec.hpp

/// An immutable node in the workflow's file DAG. Created through the
/// Manager's declare_* calls; applications treat FileRef as an opaque
/// handle to attach to tasks.
struct FileDecl {
  FileId id = 0;
  FileKind kind = FileKind::buffer;
  CacheLevel cache = CacheLevel::workflow;

  /// Unique cache name (see files/naming.hpp for generation rules). The
  /// worker stores the object under this name; tasks see the user-visible
  /// sandbox name instead.
  std::string cache_name;

  /// Size if known up front (buffers, local files); -1 when unknown until
  /// the object materializes (urls before HEAD, temps, mini-task outputs).
  std::int64_t size_hint = -1;

  // --- kind-specific fields ---
  std::string local_path;  ///< kind == local
  std::string buffer;      ///< kind == buffer: the literal content
  std::string url;         ///< kind == url

  /// kind == mini_task: the producing task specification. The mini-task
  /// runs at a worker on demand to materialize this file (paper §2.4/3.1).
  std::shared_ptr<const TaskSpec> mini_task;

  /// kind == temp: the id of the producing (normal) task, set when the
  /// file is attached as a task output. Used for naming.
  TaskId producer_task = 0;
};

/// Shared immutable handle; the manager owns the registry of declarations.
using FileRef = std::shared_ptr<const FileDecl>;

}  // namespace vine
