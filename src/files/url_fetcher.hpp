// URL access abstraction (paper §2.3/3.2 URLFile).
//
// The paper's workers download from HTTP/XRootD archives; this repo runs
// offline, so remote access goes through UrlFetcher:
//  - FileUrlFetcher serves "file://" URLs from the local filesystem,
//    synthesizing HTTP-like header metadata (ETag from inode identity,
//    Last-Modified from mtime) so the three-tier naming logic is exercised
//    exactly as with a real archive.
//  - MemoryUrlFetcher (testing + simulation) serves configured objects with
//    fully controllable headers and counts every head/fetch so tests can
//    assert how often an archive was touched — the Colmena 108→3 metric.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/mutex.hpp"

namespace vine {

/// Metadata from a HEAD request, the inputs to URL cache naming.
struct UrlMetadata {
  std::optional<std::string> content_md5;    ///< strong checksum advertised
  std::optional<std::string> etag;           ///< opaque version tag
  std::optional<std::string> last_modified;  ///< modification stamp
  std::int64_t size = -1;                    ///< content length if known
};

/// Pluggable URL access. Implementations must be thread safe: workers fetch
/// concurrently.
class UrlFetcher {
 public:
  virtual ~UrlFetcher() = default;

  /// Retrieve header metadata without the body.
  virtual Result<UrlMetadata> head(const std::string& url) = 0;

  /// Retrieve the full content.
  virtual Result<std::string> fetch(const std::string& url) = 0;
};

/// Serves "file://<path>" URLs from the local filesystem.
class FileUrlFetcher final : public UrlFetcher {
 public:
  Result<UrlMetadata> head(const std::string& url) override;
  Result<std::string> fetch(const std::string& url) override;

  /// "file:///tmp/x" -> "/tmp/x"; error for other schemes.
  static Result<std::string> path_from_url(const std::string& url);
};

/// In-memory URL store for tests and simulation.
class MemoryUrlFetcher final : public UrlFetcher {
 public:
  /// Register an object. Header fields are attached per the flags so tests
  /// can exercise each naming tier.
  void put(const std::string& url, std::string content,
           std::optional<std::string> content_md5 = std::nullopt,
           std::optional<std::string> etag = std::nullopt,
           std::optional<std::string> last_modified = std::nullopt);

  Result<UrlMetadata> head(const std::string& url) override;
  Result<std::string> fetch(const std::string& url) override;

  /// Diagnostics: how many head()/fetch() calls this URL has served.
  int head_count(const std::string& url) const;
  int fetch_count(const std::string& url) const;

 private:
  struct Entry {
    std::string content;
    UrlMetadata meta;
    int heads = 0;
    int fetches = 0;
  };
  // Guards objects_ (worker transfer threads fetch concurrently).
  mutable Mutex mutex_{lock_rank::Rank::url_fetcher};
  std::map<std::string, Entry> objects_ VINE_GUARDED_BY(mutex_);
};

}  // namespace vine
