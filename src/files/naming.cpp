#include "files/naming.hpp"

#include "common/uuid.hpp"
#include "hash/digest.hpp"
#include "hash/dirhash.hpp"

namespace vine {

std::string random_cache_name() { return "rnd-" + generate_token(12); }

Result<std::string> local_file_cache_name(const std::string& path) {
  VINE_TRY(std::string hash, merkle_hash_path(path));
  return "md5-" + hash;
}

std::string buffer_cache_name(std::string_view content) {
  return "md5-" + md5_buffer(content);
}

Result<std::string> url_cache_name(const std::string& url, UrlFetcher& fetcher) {
  VINE_TRY(UrlMetadata meta, fetcher.head(url));

  // Tier 1: the archive advertises a strong checksum; adopt it directly so
  // the same object fetched from mirrors under different URLs unifies.
  if (meta.content_md5 && !meta.content_md5->empty()) {
    return "md5-" + *meta.content_md5;
  }

  // Tier 2: hash URL + version headers. Not content-derived, but the
  // headers are guaranteed to change when the content changes, so a stale
  // name can never alias fresh data.
  if ((meta.etag && !meta.etag->empty()) ||
      (meta.last_modified && !meta.last_modified->empty())) {
    std::string doc = "vine-url-v1\n" + url + "\n" + meta.etag.value_or("") +
                      "\n" + meta.last_modified.value_or("");
    return "url-" + md5_buffer(doc);
  }

  // Tier 3 (last resort): download and hash the body.
  VINE_TRY(std::string body, fetcher.fetch(url));
  return "md5-" + md5_buffer(body);
}

std::string task_output_cache_name(const std::string& task_hash,
                                   const std::string& output_name) {
  if (output_name.empty()) return "task-" + task_hash;
  return "task-" + md5_buffer("vine-taskout-v1\n" + task_hash + "\n" + output_name);
}

}  // namespace vine
