#include "files/file_decl.hpp"

namespace vine {

const char* cache_level_name(CacheLevel level) noexcept {
  switch (level) {
    case CacheLevel::task: return "task";
    case CacheLevel::workflow: return "workflow";
    case CacheLevel::worker: return "worker";
  }
  return "?";
}

const char* file_kind_name(FileKind kind) noexcept {
  switch (kind) {
    case FileKind::local: return "local";
    case FileKind::buffer: return "buffer";
    case FileKind::url: return "url";
    case FileKind::temp: return "temp";
    case FileKind::mini_task: return "mini_task";
  }
  return "?";
}

}  // namespace vine
