// vine::factory — elastic worker-pool sizing (cctools' vine_factory, as a
// policy object). The factory never talks to workers itself: hosts
// (LocalCluster for the real runtime, ClusterSim at 10k scale) feed it a
// signal snapshot each scheduling pass and execute its verdict — spawn n
// workers, retire n idle ones, or hold.
//
// Signals and thresholds:
//   * ready-queue depth: tasks waiting per available core. Deep queue ->
//     scale up; an empty queue with mostly-idle cores -> scale down.
//   * cache pressure: replica bytes vs aggregate disk. A nearly full
//     cluster cache scales up even when cores are free — more disks is the
//     only way to make room for replicas and prefetches.
//   * replication backlog: temps still below their replication factor k.
//     A persistent backlog means the redundancy engine cannot find
//     destinations within its per-worker budgets; new workers are fresh
//     budget.
//
// Hysteresis. Chaos-induced churn (crashes, rejoins, recovery re-runs)
// makes every signal spiky; reacting per pass would flap the pool. An
// action fires only after `hysteresis` *consecutive* passes agree on the
// direction, and no sooner than `cooldown_s` after the previous action.
// Any pass that disagrees resets the streak.
//
// Deterministic and mutex-free: runs on the host's application / event
// thread, like vine::Scheduler and vine::redundancy.
#pragma once

#include <cstdint>

namespace vine::factory {

struct FactoryConfig {
  /// Master switch. Off (the default) must leave host behavior byte-
  /// identical to a build without the factory.
  bool enabled = false;

  int min_workers = 1;
  int max_workers = 64;

  /// Scale up when ready_tasks > up_tasks_per_core * idle cores (queue is
  /// outrunning the pool).
  double up_tasks_per_core = 2.0;

  /// Scale up when cache bytes / disk capacity exceeds this fraction.
  double up_cache_pressure = 0.85;

  /// Scale up when this many temps sit below their replication target.
  int up_replication_backlog = 8;

  /// Scale down only when the ready queue is empty, the replication
  /// backlog is clear, and busy cores / total cores is below this.
  double down_utilization = 0.25;

  /// Consecutive agreeing passes required before acting.
  int hysteresis = 3;

  /// Minimum spacing between actions (seconds of host time).
  double cooldown_s = 5.0;

  /// Workers spawned / retired per action.
  int step = 1;
};

/// One pass worth of host state, as the factory sees it.
struct FactorySignals {
  double now = 0;
  int alive_workers = 0;
  std::int64_t ready_tasks = 0;   ///< submitted, not yet running
  std::int64_t running_tasks = 0;
  double total_cores = 0;         ///< Σ cores over alive workers
  double busy_cores = 0;          ///< Σ committed cores
  double cache_pressure = 0;      ///< replica bytes / aggregate disk (0..1)
  int replication_backlog = 0;    ///< redundancy engine backlog()
};

struct FactoryStats {
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
  std::int64_t workers_spawned = 0;
  std::int64_t workers_retired = 0;
};

class WorkerFactory {
 public:
  explicit WorkerFactory(FactoryConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }
  const FactoryConfig& config() const { return config_; }
  const FactoryStats& stats() const { return stats_; }

  /// Evaluate one pass: > 0 means spawn that many workers, < 0 retire that
  /// many (the host retires only provably idle, fully replicated ones),
  /// 0 means hold. Clamped so the pool stays within [min, max].
  int decide(const FactorySignals& s);

 private:
  FactoryConfig config_;
  FactoryStats stats_;
  int up_streak_ = 0;
  int down_streak_ = 0;
  double last_action_at_ = 0;
  bool ever_acted_ = false;
};

}  // namespace vine::factory
