#include "factory/factory.hpp"

#include <algorithm>

namespace vine::factory {

int WorkerFactory::decide(const FactorySignals& s) {
  if (!config_.enabled) return 0;

  // Below the floor is not a load signal — restore the pool immediately
  // (no hysteresis: a chaos crash dropping the last worker must not wait
  // three passes for a replacement).
  if (s.alive_workers < config_.min_workers) {
    up_streak_ = 0;
    down_streak_ = 0;
    last_action_at_ = s.now;
    ever_acted_ = true;
    ++stats_.scale_ups;
    const int n = config_.min_workers - s.alive_workers;
    stats_.workers_spawned += n;
    return n;
  }

  const double idle_cores = std::max(0.0, s.total_cores - s.busy_cores);
  const bool queue_deep =
      static_cast<double>(s.ready_tasks) >
      config_.up_tasks_per_core * std::max(idle_cores, 1.0);
  const bool cache_tight = s.cache_pressure > config_.up_cache_pressure;
  const bool backlog_stuck =
      s.replication_backlog > config_.up_replication_backlog;
  const bool want_up = (queue_deep || cache_tight || backlog_stuck) &&
                       s.alive_workers < config_.max_workers;

  const double utilization =
      s.total_cores > 0 ? s.busy_cores / s.total_cores : 0.0;
  const bool want_down = s.ready_tasks == 0 && s.replication_backlog == 0 &&
                         utilization < config_.down_utilization &&
                         s.alive_workers > config_.min_workers;

  // Streaks: only consecutive agreement counts; a neutral or opposing pass
  // resets both directions — this is the anti-flap half of the hysteresis.
  up_streak_ = want_up ? up_streak_ + 1 : 0;
  down_streak_ = want_down ? down_streak_ + 1 : 0;

  // Cooldown is the other half: even a unanimous streak waits out the
  // previous action before the pool moves again.
  if (ever_acted_ && s.now - last_action_at_ < config_.cooldown_s) return 0;

  if (up_streak_ >= config_.hysteresis) {
    up_streak_ = 0;
    down_streak_ = 0;
    last_action_at_ = s.now;
    ever_acted_ = true;
    ++stats_.scale_ups;
    const int n =
        std::min(config_.step, config_.max_workers - s.alive_workers);
    stats_.workers_spawned += n;
    return n;
  }
  if (down_streak_ >= config_.hysteresis) {
    up_streak_ = 0;
    down_streak_ = 0;
    last_action_at_ = s.now;
    ever_acted_ = true;
    ++stats_.scale_downs;
    const int n =
        std::min(config_.step, s.alive_workers - config_.min_workers);
    stats_.workers_retired += n;
    return -n;
  }
  return 0;
}

}  // namespace vine::factory
