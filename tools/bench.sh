#!/usr/bin/env bash
# Scheduling/catalog and simulator hot-path benchmark harness.
#
# Builds the relwithdebinfo preset and runs four google-benchmark suites:
#   micro_sched — scheduling/catalog micros (up to 2000 workers)
#   micro_flow  — event-core + flow-network micros (up to 2000 flows)
#   micro_obs   — vine::obs tracing emit path (absolute ns/event budgets)
#   micro_net   — TCP data plane (small-frame throughput, blob serve GB/s)
# plus the micro_redundancy chaos soak (fig13@500 makespan with replication
# on vs off; gate: on <= off — the soak is deterministic, so the gate holds
# at smoke seed counts too) and, on full runs, wall-clock timings of the two
# transfer-heavy figure replications at paper scale (fig11_transfer_methods,
# fig13_topeft_storage --workers 500). Writes BENCH_sched.json,
# BENCH_sim.json, BENCH_obs.json, BENCH_net.json, and BENCH_redundancy.json
# at the repo root: items/sec (or seconds) per row next
# to the frozen pre-refactor baseline, with the speedup factor (the obs
# suite gates on absolute cost budgets instead — it is a new subsystem).
#
# Usage:
#   tools/bench.sh           # full run (benchmark_min_time=0.2 per case)
#   tools/bench.sh --smoke   # CI smoke: one iteration per case, still
#                            # exercising every benchmark end to end
#
# The baseline constants were measured on the pre-refactor code (BASELINE
# in the sched block: the commit before the interned-token catalog;
# BASELINE_SIM: the commit before the incremental flow engine / tombstone-
# free event core; BASELINE_NET: the commit before the epoll reactor,
# with bench/micro_net.cpp built against the thread-per-connection
# transport via -DVINE_BENCH_LEGACY_SEND) on the same machine class the
# full run targets; regenerate them only when intentionally re-baselining:
# git checkout <pre-refactor-sha>, run this script (for net: copy
# bench/micro_net.cpp into a worktree at the pre-reactor commit, add the
# target with the VINE_BENCH_LEGACY_SEND define, alternate runs with the
# current build on a quiet machine), and transplant the "current" numbers
# into the matching BASELINE table below.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
[[ "${1:-}" == "--smoke" ]] && SMOKE=1

cmake --preset relwithdebinfo >/dev/null
cmake --build --preset relwithdebinfo -j "$(nproc)" \
  --target micro_sched micro_flow micro_obs micro_net micro_redundancy \
          fig11_transfer_methods fig13_topeft_storage \
  >/dev/null

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

if [[ "$SMOKE" == 1 ]]; then
  # One pass per case: validates the harness and the JSON plumbing without
  # holding a CI runner for stable numbers.
  ./build/bench/micro_sched --benchmark_format=json \
    --benchmark_min_time=0.01 > "$RAW"
else
  ./build/bench/micro_sched --benchmark_format=json \
    --benchmark_min_time=0.2 > "$RAW"
fi

SMOKE="$SMOKE" python3 - "$RAW" <<'PYEOF'
import json, os, sys

# items/sec on the pre-indexing scheduler (O(W x I) catalog probing,
# per-call allocation in plan_source / workers_with).
BASELINE = {
    "BM_ReplicaTableUpdate": 1989739.78,
    "BM_ReplicaTableLookup": 4680151.67,
    "BM_TransferTableCycle": 2065400.42,
    "BM_PickWorker/10": 2341917.55,
    "BM_PickWorker/100": 263594.68,
    "BM_PickWorker/500": 50657.04,
    "BM_PickWorker/2000": 9263.81,
    "BM_PlanSource": 769180.41,
    "BM_TaskWireRoundTrip": 66035.76,
}

raw = json.load(open(sys.argv[1]))
rows = {}
for b in raw["benchmarks"]:
    name = b["name"]
    ips = b.get("items_per_second")
    if ips is None:
        continue
    base = BASELINE.get(name)
    rows[name] = {
        "baseline_items_per_second": base,
        "items_per_second": round(ips, 2),
        "speedup": round(ips / base, 2) if base else None,
    }

out = {
    "suite": "micro_sched",
    "smoke": os.environ.get("SMOKE") == "1",
    "context": raw.get("context", {}),
    "benchmarks": rows,
}
with open("BENCH_sched.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for name, r in rows.items():
    s = f' ({r["speedup"]}x)' if r["speedup"] else ""
    print(f'{name}: {r["items_per_second"]:.0f} items/s{s}')

key = rows.get("BM_PickWorker/2000")
if key and not out["smoke"] and key["speedup"] is not None and key["speedup"] < 5.0:
    sys.exit(f'FAIL: BM_PickWorker/2000 speedup {key["speedup"]}x < 5x target')

# Lookahead gate: one full scheduling pass with consumer gravity + prefetch
# planning (2000 workers, deep fan-in DAG) must stay within 2x the greedy
# pass. Both benches place the same 256 ready tasks, so the items/sec ratio
# is the per-pass cost ratio.
greedy = rows.get("BM_GreedyPass")
ahead = rows.get("BM_LookaheadPass")
if greedy and ahead:
    ratio = greedy["items_per_second"] / ahead["items_per_second"]
    out["lookahead_pass_cost_ratio"] = round(ratio, 2)
    with open("BENCH_sched.json", "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f'lookahead pass cost: {ratio:.2f}x greedy (gate: <= 2x)')
    if not out["smoke"] and ratio > 2.0:
        sys.exit(f'FAIL: BM_LookaheadPass {ratio:.2f}x greedy pass cost > 2x gate')
print("wrote BENCH_sched.json")
PYEOF

# ---------------------------------------------------------------- micro_flow

RAW_SIM=$(mktemp)
trap 'rm -f "$RAW" "$RAW_SIM"' EXIT

if [[ "$SMOKE" == 1 ]]; then
  ./build/bench/micro_flow --benchmark_format=json \
    --benchmark_min_time=0.01 > "$RAW_SIM"
else
  ./build/bench/micro_flow --benchmark_format=json \
    --benchmark_min_time=0.2 > "$RAW_SIM"
fi

# Figure replications are only timed on full runs: stable wall-clock needs
# a quiet machine and fig13 at 500 workers holds the runner for ~20 s.
FIG11_SECS=""
FIG13_SECS=""
if [[ "$SMOKE" != 1 ]]; then
  t0=$(date +%s.%N)
  ./build/bench/fig11_transfer_methods >/dev/null
  FIG11_SECS=$(echo "$(date +%s.%N) $t0" | awk '{printf "%.2f", $1 - $2}')
  t0=$(date +%s.%N)
  ./build/bench/fig13_topeft_storage --workers 500 >/dev/null
  FIG13_SECS=$(echo "$(date +%s.%N) $t0" | awk '{printf "%.2f", $1 - $2}')
fi

SMOKE="$SMOKE" FIG11_SECS="$FIG11_SECS" FIG13_SECS="$FIG13_SECS" \
python3 - "$RAW_SIM" <<'PYEOF'
import json, os, sys

# items/sec on the pre-refactor flow engine (global O(F) rebalance sweep
# per flow start/end over a std::map, cancel-tombstone event heap).
BASELINE_SIM = {
    "BM_EventChurn/1024": 8296800.0,
    "BM_EventChurn/65536": 4999200.0,
    "BM_FlowChurn/16": 88345.3,
    "BM_FlowChurn/256": 4065.67,
    "BM_FlowChurn/2000": 168.615,
    "BM_HotspotFanout/100": 110.001,
    "BM_HotspotFanout/500": 6970.24,
}

# Wall-clock seconds of the figure replications on the same baseline.
# fig13 gained a third (lookahead) simulation run in PR 8; its pre-PR-8
# baseline of 24.69 s covered two runs, so the comparable figure for the
# three-run binary is 24.69 / 2 * 3 (the gate tracks engine speed, not
# the number of scenarios the binary replicates).
BASELINE_FIGS = {
    "fig11_transfer_methods": 0.46,
    "fig13_topeft_storage --workers 500": 37.04,
}

raw = json.load(open(sys.argv[1]))
rows = {}
for b in raw["benchmarks"]:
    name = b["name"]
    ips = b.get("items_per_second")
    if ips is None:
        continue
    base = BASELINE_SIM.get(name)
    rows[name] = {
        "baseline_items_per_second": base,
        "items_per_second": round(ips, 2),
        "speedup": round(ips / base, 2) if base else None,
    }

figs = {}
for key, env in (("fig11_transfer_methods", "FIG11_SECS"),
                 ("fig13_topeft_storage --workers 500", "FIG13_SECS")):
    secs = os.environ.get(env) or None
    base = BASELINE_FIGS[key]
    figs[key] = {
        "baseline_seconds": base,
        "seconds": float(secs) if secs else None,
        "speedup": round(base / float(secs), 2) if secs else None,
    }

out = {
    "suite": "micro_flow",
    "smoke": os.environ.get("SMOKE") == "1",
    "context": raw.get("context", {}),
    "benchmarks": rows,
    "figures": figs,
}
with open("BENCH_sim.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for name, r in rows.items():
    s = f' ({r["speedup"]}x)' if r["speedup"] else ""
    print(f'{name}: {r["items_per_second"]:.0f} items/s{s}')
for name, r in figs.items():
    if r["seconds"] is not None:
        print(f'{name}: {r["seconds"]}s wall (baseline {r["baseline_seconds"]}s,'
              f' {r["speedup"]}x)')

# The micro gate holds even at smoke iteration counts (current speedup is
# two orders of magnitude past the bar), so CI enforces it on every run;
# the wall-clock figure gates need a quiet machine and stay full-run-only.
key = rows.get("BM_FlowChurn/2000")
if key and key["speedup"] is not None and key["speedup"] < 10.0:
    sys.exit(f'FAIL: BM_FlowChurn/2000 speedup {key["speedup"]}x < 10x target')
if not out["smoke"]:
    for name, r in figs.items():
        if r["seconds"] is not None and r["seconds"] >= r["baseline_seconds"]:
            sys.exit(f'FAIL: {name} wall {r["seconds"]}s >= baseline '
                     f'{r["baseline_seconds"]}s')
print("wrote BENCH_sim.json")
PYEOF

# ----------------------------------------------------------------- micro_obs

RAW_OBS=$(mktemp)
trap 'rm -f "$RAW" "$RAW_SIM" "$RAW_OBS"' EXIT

if [[ "$SMOKE" == 1 ]]; then
  ./build/bench/micro_obs --benchmark_format=json \
    --benchmark_min_time=0.01 > "$RAW_OBS"
else
  ./build/bench/micro_obs --benchmark_format=json \
    --benchmark_min_time=0.2 > "$RAW_OBS"
fi

SMOKE="$SMOKE" python3 - "$RAW_OBS" <<'PYEOF'
import json, os, sys

# The obs layer is new (no pre-refactor baseline); the gates are absolute
# cost budgets from DESIGN.md: tracing disabled must stay a branch on a
# pointer (<= 10 ns even with loop overhead), and an enabled emit must stay
# under 150 ns/event so full paper-scale simulations can run traced.
GATE_NS = {
    "BM_EmitDisabled": 10.0,
    "BM_EmitEnabled": 150.0,
}

raw = json.load(open(sys.argv[1]))
rows = {}
for b in raw["benchmarks"]:
    name = b["name"]
    ips = b.get("items_per_second")
    if ips is None:
        continue
    ns = 1e9 / ips
    rows[name] = {
        "items_per_second": round(ips, 2),
        "ns_per_event": round(ns, 2),
        "gate_ns": GATE_NS.get(name),
    }

out = {
    "suite": "micro_obs",
    "smoke": os.environ.get("SMOKE") == "1",
    "context": raw.get("context", {}),
    "benchmarks": rows,
}
with open("BENCH_obs.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for name, r in rows.items():
    gate = f' (gate {r["gate_ns"]:.0f} ns)' if r["gate_ns"] else ""
    print(f'{name}: {r["ns_per_event"]} ns/event{gate}')

# The budgets hold by a wide margin even at smoke iteration counts, so CI
# enforces them on every run.
for name, gate in GATE_NS.items():
    r = rows.get(name)
    if r and r["ns_per_event"] > gate:
        sys.exit(f'FAIL: {name} {r["ns_per_event"]} ns/event > {gate} ns budget')
print("wrote BENCH_obs.json")
PYEOF

# ----------------------------------------------------------------- micro_net

RAW_NET=$(mktemp)
trap 'rm -f "$RAW" "$RAW_SIM" "$RAW_OBS" "$RAW_NET"' EXIT

if [[ "$SMOKE" == 1 ]]; then
  ./build/bench/micro_net --benchmark_format=json \
    --benchmark_min_time=0.01 > "$RAW_NET"
else
  ./build/bench/micro_net --benchmark_format=json \
    --benchmark_min_time=0.4 > "$RAW_NET"
fi

SMOKE="$SMOKE" python3 - "$RAW_NET" <<'PYEOF'
import json, os, sys

# Throughput of the pre-reactor transport (one blocking write syscall per
# frame, one parked reader thread per connection, blob serves copied
# through userspace), measured from the identical bench source built with
# -DVINE_BENCH_LEGACY_SEND at the pre-reactor commit. Medians of three
# alternating runs on the same machine as the current numbers.
BASELINE_NET_ITEMS = {
    "BM_SmallFrames/8/real_time": 283557.0,
    "BM_SmallFrames/64/real_time": 257576.0,
    "BM_SmallFrames/256/real_time": 236216.0,
}
BASELINE_NET_BYTES = {
    "BM_BlobServe/real_time": 2.6098e8,
}

raw = json.load(open(sys.argv[1]))
rows = {}
for b in raw["benchmarks"]:
    name = b["name"]
    ips = b.get("items_per_second")
    bps = b.get("bytes_per_second")
    if ips is not None:
        base = BASELINE_NET_ITEMS.get(name)
        rows[name] = {
            "baseline_items_per_second": base,
            "items_per_second": round(ips, 2),
            "speedup": round(ips / base, 2) if base else None,
        }
    elif bps is not None:
        base = BASELINE_NET_BYTES.get(name)
        rows[name] = {
            "baseline_bytes_per_second": base,
            "bytes_per_second": round(bps, 2),
            "speedup": round(bps / base, 2) if base else None,
        }

out = {
    "suite": "micro_net",
    "smoke": os.environ.get("SMOKE") == "1",
    "context": raw.get("context", {}),
    "benchmarks": rows,
}
with open("BENCH_net.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for name, r in rows.items():
    s = f' ({r["speedup"]}x)' if r["speedup"] else ""
    if "items_per_second" in r:
        print(f'{name}: {r["items_per_second"]:.0f} items/s{s}')
    else:
        print(f'{name}: {r["bytes_per_second"] / 1e6:.0f} MB/s{s}')

# Loopback throughput needs a quiet machine for stable numbers (the
# sender, reactor, and receiver share cores), so like the sched gate these
# are full-run-only. Current margins on the baseline machine: ~6-7x small
# frames at 256 connections, ~2.2x blob serve.
if not out["smoke"]:
    key = rows.get("BM_SmallFrames/256/real_time")
    if key and key["speedup"] is not None and key["speedup"] < 5.0:
        sys.exit(f'FAIL: BM_SmallFrames/256 speedup {key["speedup"]}x < 5x target')
    key = rows.get("BM_BlobServe/real_time")
    if key and key["speedup"] is not None and key["speedup"] < 2.0:
        sys.exit(f'FAIL: BM_BlobServe speedup {key["speedup"]}x < 2x target')
print("wrote BENCH_net.json")
PYEOF

# ---------------------------------------------------------- micro_redundancy

RAW_RED=$(mktemp)
trap 'rm -f "$RAW" "$RAW_SIM" "$RAW_OBS" "$RAW_NET" "$RAW_RED"' EXIT

# The soak is a deterministic simulation, so smoke runs keep the makespan
# gate and just cover fewer fault plans.
if [[ "$SMOKE" == 1 ]]; then
  ./build/bench/micro_redundancy --seeds 2 > "$RAW_RED"
else
  ./build/bench/micro_redundancy --seeds 5 > "$RAW_RED"
fi

SMOKE="$SMOKE" python3 - "$RAW_RED" <<'PYEOF'
import json, os, sys

# fig13@500 chaos-soak makespans, replication on vs off on identical fault
# plans. No pre-refactor baseline: replication-off IS the baseline, rerun
# in the same process, so the gate is a self-contained A/B (on <= off) plus
# the robustness invariant (no producer re-run for any replicated temp).
seeds = {}
for line in open(sys.argv[1]):
    if not line.startswith("redundancy_seed,"):
        continue
    parts = line.strip().split(",")
    if parts[1] == "seed":
        continue
    seeds[int(parts[1])] = {
        "makespan_off_s": float(parts[2]),
        "makespan_on_s": float(parts[3]),
        "replications": int(parts[4]),
        "replica_repairs": int(parts[5]),
        "recoveries_off": int(parts[6]),
        "recoveries_on": int(parts[7]),
        "recoveries_replicated": int(parts[8]),
    }

mean_off = sum(r["makespan_off_s"] for r in seeds.values()) / len(seeds)
mean_on = sum(r["makespan_on_s"] for r in seeds.values()) / len(seeds)
out = {
    "suite": "micro_redundancy",
    "smoke": os.environ.get("SMOKE") == "1",
    "workload": "fig13@500 chaos soak (>=5% workers crashed, k=2)",
    "seeds": seeds,
    "mean_makespan_off_s": round(mean_off, 3),
    "mean_makespan_on_s": round(mean_on, 3),
    "on_over_off": round(mean_on / mean_off, 4),
}
with open("BENCH_redundancy.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for s, r in sorted(seeds.items()):
    print(f'seed {s}: off {r["makespan_off_s"]:.1f}s on {r["makespan_on_s"]:.1f}s'
          f' ({r["replications"]} replications, {r["replica_repairs"]} repairs)')
print(f'mean makespan: off {mean_off:.1f}s, on {mean_on:.1f}s '
      f'(ratio {out["on_over_off"]:.3f}, gate: <= 1.0)')

if mean_on > mean_off * 1.001:
    sys.exit(f'FAIL: replication-on mean makespan {mean_on:.1f}s > '
             f'replication-off {mean_off:.1f}s')
bad = {s: r for s, r in seeds.items() if r["recoveries_replicated"] > 0}
if bad:
    sys.exit(f'FAIL: replicated temps needed producer re-runs: {bad}')
print("wrote BENCH_redundancy.json")
PYEOF
