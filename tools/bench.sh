#!/usr/bin/env bash
# Scheduling/catalog hot-path benchmark harness.
#
# Builds the relwithdebinfo preset, runs the micro_sched google-benchmark
# suite at paper scale (up to 2000 workers), and writes BENCH_sched.json at
# the repo root: items/sec per benchmark, next to the frozen pre-indexing
# baseline, with the speedup factor per row.
#
# Usage:
#   tools/bench.sh           # full run (benchmark_min_time=0.2 per case)
#   tools/bench.sh --smoke   # CI smoke: one iteration per case, still
#                            # exercising every benchmark end to end
#
# The baseline constants were measured on the pre-indexing scheduler (the
# commit before the interned-token catalog landed) on the same machine
# class the full run targets; regenerate them only when intentionally
# re-baselining: git checkout <pre-indexing-sha> && run this script and
# transplant the "current" numbers into BASELINE below.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
[[ "${1:-}" == "--smoke" ]] && SMOKE=1

cmake --preset relwithdebinfo >/dev/null
cmake --build --preset relwithdebinfo -j "$(nproc)" --target micro_sched >/dev/null

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

if [[ "$SMOKE" == 1 ]]; then
  # One pass per case: validates the harness and the JSON plumbing without
  # holding a CI runner for stable numbers.
  ./build/bench/micro_sched --benchmark_format=json \
    --benchmark_min_time=0.01 > "$RAW"
else
  ./build/bench/micro_sched --benchmark_format=json \
    --benchmark_min_time=0.2 > "$RAW"
fi

SMOKE="$SMOKE" python3 - "$RAW" <<'PYEOF'
import json, os, sys

# items/sec on the pre-indexing scheduler (O(W x I) catalog probing,
# per-call allocation in plan_source / workers_with).
BASELINE = {
    "BM_ReplicaTableUpdate": 1989739.78,
    "BM_ReplicaTableLookup": 4680151.67,
    "BM_TransferTableCycle": 2065400.42,
    "BM_PickWorker/10": 2341917.55,
    "BM_PickWorker/100": 263594.68,
    "BM_PickWorker/500": 50657.04,
    "BM_PickWorker/2000": 9263.81,
    "BM_PlanSource": 769180.41,
    "BM_TaskWireRoundTrip": 66035.76,
}

raw = json.load(open(sys.argv[1]))
rows = {}
for b in raw["benchmarks"]:
    name = b["name"]
    ips = b.get("items_per_second")
    if ips is None:
        continue
    base = BASELINE.get(name)
    rows[name] = {
        "baseline_items_per_second": base,
        "items_per_second": round(ips, 2),
        "speedup": round(ips / base, 2) if base else None,
    }

out = {
    "suite": "micro_sched",
    "smoke": os.environ.get("SMOKE") == "1",
    "context": raw.get("context", {}),
    "benchmarks": rows,
}
with open("BENCH_sched.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for name, r in rows.items():
    s = f' ({r["speedup"]}x)' if r["speedup"] else ""
    print(f'{name}: {r["items_per_second"]:.0f} items/s{s}')

key = rows.get("BM_PickWorker/2000")
if key and not out["smoke"] and key["speedup"] is not None and key["speedup"] < 5.0:
    sys.exit(f'FAIL: BM_PickWorker/2000 speedup {key["speedup"]}x < 5x target')
print("wrote BENCH_sched.json")
PYEOF
