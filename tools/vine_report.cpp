// vine_report — render the paper's evaluation views from a vine::obs JSONL
// trace (task table, worker activity intervals, per-source transfer matrix,
// bandwidth time series, counters), validating every line against the
// versioned schema on the way in.
//
// The trace may come from either half of the repo — a runtime LocalCluster
// or a vinesim::ClusterSim — because both emit the same event vocabulary.
// `--chaos SEED --out PATH` additionally runs the simulator's chaos soak
// workload (seeded FaultPlan over a diamond workflow) and writes its trace,
// which is what CI feeds back through the validator.
//
// Usage:
//   vine_report TRACE.jsonl [--tasks] [--workers] [--matrix]
//               [--bandwidth SECONDS] [--counters] [--validate-only]
//   vine_report --chaos SEED --out TRACE.jsonl
//   vine_report --workbench SUMMARY.json
//
// With no view flag, every view is printed. A trace that is missing,
// unreadable, schema-invalid, truncated mid-record, or empty (zero events)
// is an error, not an empty report. `--workbench` renders a
// vine_workbench summary.json as a per-cell table. Exit codes: 0 success,
// 1 usage error, 2 schema/validation failure.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "common/uuid.hpp"
#include "fsutil/fsutil.hpp"
#include "json/json.hpp"
#include "obs/schema.hpp"
#include "obs/trace_sink.hpp"
#include "obs/views.hpp"
#include "sim/cluster_sim.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vine_report TRACE.jsonl [--tasks] [--workers] [--matrix]\n"
               "                   [--bandwidth SECONDS] [--counters] [--validate-only]\n"
               "       vine_report --chaos SEED --out TRACE.jsonl\n"
               "       vine_report --workbench SUMMARY.json\n");
  return 1;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_double(const std::string& s, double* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

// The chaos workload mirrors tests/chaos_sim_test.cpp: 6 producers -> 6
// transforms -> 1 join over 200 MB temps on 4 workers, with a seeded
// FaultPlan (crashes, peer faults, delays) replayed as discrete events.
int run_chaos(std::uint64_t seed, const std::string& out_path) {
  vine::reseed_uuid_generator(seed);

  vinesim::SimConfig cfg;
  cfg.seed = seed;
  cfg.worker_nic_Bps = 1.25e9;
  cfg.archive_Bps = 1.25e9;
  cfg.sched.health = {.backoff_base_s = 0.2, .backoff_cap_s = 2.0};
  cfg.trace = std::make_shared<vine::obs::TraceSink>(
      vine::obs::TraceSinkOptions{.retain_events = false, .jsonl_path = out_path});

  vinesim::ClusterSim cs(cfg);
  for (int i = 0; i < 4; ++i) cs.add_worker("w" + std::to_string(i), 0, 4);
  vinesim::SimTask* join = cs.add_task("join", 0.4, 1.0);
  for (int i = 0; i < 6; ++i) {
    auto* raw = cs.declare_file("raw" + std::to_string(i), 0,
                                vinesim::SimFile::Origin::temp);
    auto* mid = cs.declare_file("mid" + std::to_string(i), 0,
                                vinesim::SimFile::Origin::temp);
    auto* produce = cs.add_task("produce", 0.5, 1.0);
    produce->outputs.push_back({raw, 200000000});
    auto* transform = cs.add_task("transform", 0.5, 1.0);
    transform->inputs.push_back(raw);
    transform->outputs.push_back({mid, 200000000});
    join->inputs.push_back(mid);
  }

  vine::faults::FaultPlanConfig fp;
  fp.seed = seed;
  fp.workers = 4;
  fp.horizon = 8.0;
  fp.crashes = 2;
  fp.peer_faults = 3;
  fp.delays = 1;
  fp.rejoin_mean = 2.0;
  fp.stall_timeout = 0.5;
  cs.apply_fault_plan(vine::faults::FaultPlan::generate(fp));

  double makespan = cs.run();
  std::printf("chaos seed %llu: makespan %.3f s, %llu events -> %s\n",
              static_cast<unsigned long long>(seed), makespan,
              static_cast<unsigned long long>(cfg.trace->event_count()),
              out_path.c_str());
  if (cs.stats().tasks_unfinished != 0) {
    std::fprintf(stderr, "chaos run did not converge: %lld unfinished\n",
                 static_cast<long long>(cs.stats().tasks_unfinished));
    return 2;
  }
  return 0;
}

void print_tasks(const vine::obs::ViewBuilder& views) {
  std::printf("== task view ==\n");
  std::printf("%8s  %-10s %-14s %10s %10s %10s  %s\n", "task", "worker",
              "category", "ready", "start", "finish", "ok");
  for (const auto& row : views.tasks()) {
    std::printf("%8llu  %-10s %-14s %10.3f %10.3f %10.3f  %s\n",
                static_cast<unsigned long long>(row.task_id), row.worker.c_str(),
                row.category.c_str(), row.ready_at, row.started_at,
                row.finished_at, row.ok ? "yes" : "NO");
  }
  std::printf("\n");
}

void print_workers(const vine::obs::ViewBuilder& views, double t_end) {
  std::printf("== worker view (t_end %.3f) ==\n", t_end);
  for (const auto& [worker, intervals] : views.timelines(t_end)) {
    auto u = views.utilization(worker, t_end);
    std::printf("%-12s busy %8.3f  transfer %8.3f  idle %8.3f\n", worker.c_str(),
                u.busy, u.transfer, u.idle);
    for (const auto& iv : intervals) {
      std::printf("    %10.3f .. %-10.3f %s\n", iv.begin, iv.end,
                  vine::obs::worker_state_name(iv.state));
    }
  }
  std::printf("\n");
}

void print_matrix(const vine::obs::ViewBuilder& views) {
  std::printf("== transfer matrix (source kind -> destination) ==\n");
  for (const auto& [source, dests] : views.transfer_matrix()) {
    for (const auto& [dest, cell] : dests) {
      std::printf("%-8s -> %-12s %6lld transfers %14lld bytes\n", source.c_str(),
                  dest.c_str(), static_cast<long long>(cell.count),
                  static_cast<long long>(cell.bytes));
    }
  }
  std::printf("\n");
}

void print_bandwidth(const vine::obs::ViewBuilder& views, double bin_seconds) {
  std::printf("== bandwidth series (bin %.3f s) ==\n", bin_seconds);
  for (const auto& point : views.bandwidth_series(bin_seconds)) {
    std::printf("%10.3f  %14lld bytes\n", point.t,
                static_cast<long long>(point.bytes));
  }
  std::printf("\n");
}

void print_counters(const vine::obs::ViewBuilder& views) {
  std::printf("== counters ==\n");
  for (const auto& [name, value] : views.counters_view()) {
    std::printf("%-36s %lld\n", name.c_str(), static_cast<long long>(value));
  }
  std::printf("\n");
}

// Render a vine_workbench summary.json (format "vine-workbench-summary" v1)
// as the matrix table; exit 2 when any cell failed so CI can gate on it.
int render_workbench(const std::string& path) {
  auto text = vine::read_file(path);
  if (!text.ok()) {
    std::fprintf(stderr, "cannot read summary %s: %s\n", path.c_str(),
                 text.error().message.c_str());
    return 2;
  }
  auto doc = vine::json::parse(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "invalid summary %s: %s\n", path.c_str(),
                 doc.error().message.c_str());
    return 2;
  }
  if (doc->get_string("format") != "vine-workbench-summary") {
    std::fprintf(stderr, "%s is not a vine-workbench summary\n", path.c_str());
    return 2;
  }
  const vine::json::Value* cells = doc->find("cells");
  if (!cells || !cells->is_array() || cells->as_array().empty()) {
    std::fprintf(stderr, "summary %s has no cells\n", path.c_str());
    return 2;
  }

  std::printf("== workbench matrix (%zu cells) ==\n", cells->as_array().size());
  std::printf("%-34s %6s %6s %10s %9s %9s %6s %6s %6s %8s  %s\n", "cell",
              "tasks", "done", "makespan", "peerMB", "mgrMB", "pfhit", "repl",
              "recov", "events", "status");
  int failed = 0;
  for (const auto& cell : cells->as_array()) {
    const bool ok = cell.get_bool("ok");
    if (!ok) ++failed;
    std::string status = ok ? "ok" : "FAIL: " + cell.get_string("error", "?");
    std::printf("%-34s %6lld %6lld %10.3f %9.1f %9.1f %6lld %6lld %6lld %8lld  %s\n",
                cell.get_string("cell", "?").c_str(),
                static_cast<long long>(cell.get_int("tasks")),
                static_cast<long long>(cell.get_int("tasksDone")),
                cell.get_double("makespan"),
                static_cast<double>(cell.get_int("bytesFromPeers")) / 1e6,
                static_cast<double>(cell.get_int("bytesFromManager")) / 1e6,
                static_cast<long long>(cell.get_int("prefetchHits")),
                static_cast<long long>(cell.get_int("replications")),
                static_cast<long long>(cell.get_int("recoveries")),
                static_cast<long long>(cell.get_int("events")),
                status.c_str());
  }
  if (failed != 0) {
    std::fprintf(stderr, "%d of %zu cells failed\n", failed,
                 cells->as_array().size());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string out_path;
  bool want_tasks = false, want_workers = false, want_matrix = false;
  bool want_bandwidth = false, want_counters = false, validate_only = false;
  double bin_seconds = 1.0;
  std::uint64_t chaos_seed = 0;
  bool chaos = false;
  std::string workbench_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--tasks") {
      want_tasks = true;
    } else if (arg == "--workers") {
      want_workers = true;
    } else if (arg == "--matrix") {
      want_matrix = true;
    } else if (arg == "--counters") {
      want_counters = true;
    } else if (arg == "--validate-only") {
      validate_only = true;
    } else if (arg == "--bandwidth") {
      if (++i >= argc || !parse_double(argv[i], &bin_seconds)) return usage();
      want_bandwidth = true;
    } else if (arg == "--chaos") {
      if (++i >= argc || !parse_u64(argv[i], &chaos_seed)) return usage();
      chaos = true;
    } else if (arg == "--out") {
      if (++i >= argc) return usage();
      out_path = argv[i];
    } else if (arg == "--workbench") {
      if (++i >= argc) return usage();
      workbench_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage();
    }
  }

  if (chaos) {
    if (out_path.empty() || !trace_path.empty()) return usage();
    return run_chaos(chaos_seed, out_path);
  }
  if (!workbench_path.empty()) {
    if (!trace_path.empty()) return usage();
    return render_workbench(workbench_path);
  }
  if (trace_path.empty()) return usage();

  auto events = vine::obs::load_trace_file(trace_path);
  if (!events.ok()) {
    std::fprintf(stderr, "invalid trace: %s\n", events.error().message.c_str());
    return 2;
  }
  if (events->empty()) {
    // An empty (or effectively empty) trace means the producer wrote
    // nothing — render an error, never a plausible-looking empty report.
    std::fprintf(stderr, "invalid trace: %s contains no events\n",
                 trace_path.c_str());
    return 2;
  }
  std::printf("%s: %zu schema-valid events\n\n", trace_path.c_str(),
              events->size());
  if (validate_only) return 0;

  vine::obs::ViewBuilder views;
  double t_end = 0;
  for (const auto& ev : *events) {
    views.apply(ev);
    t_end = std::max(t_end, ev.t);
  }

  const bool all = !want_tasks && !want_workers && !want_matrix &&
                   !want_bandwidth && !want_counters;
  if (all || want_tasks) print_tasks(views);
  if (all || want_workers) print_workers(views, t_end);
  if (all || want_matrix) print_matrix(views);
  if (all || want_bandwidth) print_bandwidth(views, bin_seconds);
  if (all || want_counters) print_counters(views);
  return 0;
}
