#!/usr/bin/env bash
# Full correctness gate: build and run the test suite under every preset in
# the sanitizer matrix (plain RelWithDebInfo, ASan+UBSan, TSan), then run
# vine_lint over src/. Any failure fails the script.
#
# Usage: tools/check.sh [preset ...]   (default: all three presets)
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(relwithdebinfo asan tsan)
fi

JOBS="${JOBS:-$(nproc)}"

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset"
done

echo "=== vine_lint ==="
# Any configured build dir has the lint binary; prefer the plain one.
for dir in build build-asan build-tsan; do
  if [ -x "$dir/tools/vine_lint" ]; then
    "$dir/tools/vine_lint" src --allowlist tools/vine_lint_allowlist.txt
    echo "=== all checks passed ==="
    exit 0
  fi
done
echo "vine_lint binary not found in any build dir" >&2
exit 1
