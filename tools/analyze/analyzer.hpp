// vine_analyze — whole-tree lock-graph static analysis.
//
// A multi-pass analyzer over the vine source tree, one step up from
// vine_lint: instead of line-local pattern rules it builds a real IR —
// lexed files, class/member tables, function records with body token
// ranges, per-function acquired-lock scopes, and a name-resolved call
// graph — and then runs whole-program passes:
//
//   lock-cycle           cycle in the mutex acquisition graph (A held while
//                        B acquired, ..., Z held while A acquired)
//   rank-inversion       an acquired-while-held edge that is not strictly
//                        monotone in the declared lock_rank::Rank order
//   blocking-under-lock  a blocking operation (::recv/::poll/::accept,
//                        condvar wait, MsgQueue::pop, thread join, file
//                        I/O) reachable while a vine lock is held
//   unguarded-access     a VINE_GUARDED_BY member touched in a method with
//                        no guard acquisition in scope and no VINE_REQUIRES
//   unranked-mutex       a raw std::mutex member (must be vine::Mutex)
//   rank-table-drift     emitted canonical rank table differs from the
//                        committed tools/lock_ranks.txt
//
// Findings are vetted through a justified allowlist (vine_lint format) and
// the CLI exits nonzero on any unallowlisted finding, so the analyzer runs
// as a ctest. See DESIGN.md "Concurrency discipline" for triage guidance.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace vine::analyze {

struct Finding {
  std::string path;  ///< relative to the scanned root
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Committed rank table (tools/lock_ranks.txt). Empty: skip the
  /// rank-table-drift check (fixture trees).
  std::string ranks_path;
};

struct Analysis {
  std::vector<Finding> findings;
  /// Canonical rank table: declared ranks + observed nesting constraints.
  std::string rank_table;
  std::size_t files_scanned = 0;
  std::size_t functions_indexed = 0;
  std::size_t mutexes_indexed = 0;
  std::size_t call_edges = 0;
  std::size_t lock_edges = 0;
};

/// Analyze every *.hpp/*.cpp under `root`.
Analysis analyze_tree(const std::filesystem::path& root, const Options& opts);

}  // namespace vine::analyze
