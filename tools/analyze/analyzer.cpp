#include "analyze/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace vine::analyze {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Pass 1: lexing. Comments and string/char literals are blanked (structure
// preserved, same trick as vine_lint) and the residue is tokenized into
// identifiers and punctuation with line numbers. Multi-char operators the
// later passes care about ("::", "->", "<<") stay fused; everything else is
// single-char punctuation.
// ---------------------------------------------------------------------------

std::string code_view(const std::string& src) {
  std::string out = src;
  enum class St { code, line_comment, block_comment, str, chr };
  St st = St::code;
  for (std::size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    char n = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::code:
        if (c == '/' && n == '/') {
          st = St::line_comment;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::block_comment;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::str;
        } else if (c == '\'') {
          st = St::chr;
        }
        break;
      case St::line_comment:
        if (c == '\n') {
          st = St::code;
        } else {
          out[i] = ' ';
        }
        break;
      case St::block_comment:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::str:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::chr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

struct Tok {
  std::string text;
  std::size_t line = 0;
  bool is_ident = false;
};

std::vector<Tok> tokenize(const std::string& code) {
  std::vector<Tok> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // preprocessor: skip to end of (continued) line
      while (i < code.size()) {
        if (code[i] == '\\' && i + 1 < code.size() && code[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (code[i] == '\n') break;
        ++i;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[j])) || code[j] == '_')) {
        ++j;
      }
      toks.push_back({code.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[j])) || code[j] == '.' ||
              code[j] == '\'')) {
        ++j;
      }
      toks.push_back({code.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    char n = i + 1 < code.size() ? code[i + 1] : '\0';
    if (c == ':' && n == ':') {
      toks.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && n == '>') {
      toks.push_back({"->", line, false});
      i += 2;
      continue;
    }
    if (c == '<' && n == '<') {
      toks.push_back({"<<", line, false});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), line, false});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// IR structures
// ---------------------------------------------------------------------------

struct MutexDecl {
  std::string id;         // "Class::member" or "file.cpp::g_name"
  std::string rank;       // rank enum name, "" if untagged
  std::string file;       // relative path
  std::size_t line = 0;
  bool is_raw_std = false;  // std::mutex instead of vine::Mutex
};

struct ClassInfo {
  std::string name;
  // member name -> type spelling (flattened token text)
  std::unordered_map<std::string, std::string> member_types;
  // guarded member name -> mutex id ("Class::mutex_")
  std::unordered_map<std::string, std::string> guarded;
  // mutex member names declared in this class
  std::vector<std::string> mutexes;
  std::unordered_set<std::string> method_names;
};

struct FuncInfo {
  std::string qual;       // "Class::name", "name", or "Class::name::<lambda@N>"
  std::string cls;        // enclosing class ("" for free functions)
  std::string name;
  std::string file;
  std::size_t line = 0;
  std::size_t file_idx = 0;
  std::size_t body_begin = 0;  // token range of body (inside braces)
  std::size_t body_end = 0;
  bool is_ctor_dtor = false;
  bool no_analysis = false;          // VINE_NO_THREAD_SAFETY_ANALYSIS
  std::vector<std::string> requires_;  // mutex ids from VINE_REQUIRES

  // filled by the body pass
  std::vector<std::size_t> calls;      // indices into g.call_sites
  bool blocks_directly = false;
  std::string block_reason;
  std::size_t block_line = 0;
  // mutexes acquired anywhere in the body (direct, not transitive)
  std::set<std::string> direct_acquires;
  // derived
  bool may_block = false;
  std::set<std::string> trans_acquires;
};

struct CallSite {
  std::size_t caller = 0;  // index into funcs
  std::string callee_name;
  std::vector<std::string> receiver;  // chain before the name (a->b.name)
  bool scoped_qualified = false;       // Class::name( form; receiver = qualifiers
  std::size_t line = 0;
  std::vector<std::string> held;       // mutex ids held at the call site
  // condvar-wait exemption: mutex released by the wait itself
  std::string exempt;
};

struct LockEdge {
  std::string from;  // held mutex id
  std::string to;    // acquired mutex id
  std::string file;
  std::size_t line = 0;
  std::string via;  // description of the path (for messages)
};

struct FileUnit {
  std::string rel;
  std::vector<Tok> toks;
};

struct Graph {
  std::vector<FileUnit> files;
  std::unordered_map<std::string, ClassInfo> classes;
  std::unordered_map<std::string, MutexDecl> mutexes;  // by id
  // per-file globals: file rel -> (name -> mutex id)
  std::unordered_map<std::string, std::unordered_map<std::string, std::string>> file_globals;
  std::vector<FuncInfo> funcs;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name;  // bare name -> funcs
  std::unordered_map<std::string, std::size_t> by_qual;
  std::vector<CallSite> call_sites;
  std::vector<LockEdge> lock_edges;
  // rank name -> value, parsed from lock_rank.hpp's enum
  std::map<std::string, int> rank_values;
  // annotations recorded on in-class declarations, keyed by "Class::name"
  std::unordered_map<std::string, std::vector<std::string>> decl_requires;
  std::unordered_set<std::string> decl_no_analysis;
};

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "if", "else", "for", "while", "do", "switch", "case", "default", "break",
      "continue", "return", "goto", "try", "catch", "throw", "new", "delete",
      "sizeof", "alignof", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "const", "constexpr", "static", "inline", "virtual",
      "override", "final", "noexcept", "mutable", "explicit", "friend", "using",
      "typedef", "typename", "template", "class", "struct", "union", "enum",
      "namespace", "public", "private", "protected", "operator", "this",
      "nullptr", "true", "false", "auto", "void", "bool", "char", "int", "long",
      "short", "float", "double", "unsigned", "signed", "co_await", "co_return",
  };
  return kw;
}

// Method names too generic to resolve by "which class defines this" alone.
const std::unordered_set<std::string>& generic_methods() {
  static const std::unordered_set<std::string> g = {
      "size", "empty", "clear", "begin", "end", "find", "count", "push_back",
      "pop_back", "emplace", "emplace_back", "erase", "insert", "at", "front",
      "back", "data", "c_str", "reserve", "swap", "get", "reset", "release",
      "str", "string", "value", "load", "store", "exchange", "compare",
      "substr", "append", "assign", "open", "is_open", "good", "fail",
      "lock", "unlock", "try_lock", "notify_one", "notify_all", "now",
      "name", "id", "what", "first", "second", "ok", "error", "message",
      "contains", "merge", "apply", "emit", "run", "start", "stop", "close",
  };
  return g;
}

// Operations that block the calling thread. ::name forms and bare calls.
const std::unordered_set<std::string>& blocking_roots() {
  static const std::unordered_set<std::string> b = {
      "recv", "send", "accept", "poll", "select", "connect", "recvfrom",
      "sendto", "read", "write", "fsync", "join", "sleep_for", "sleep_until",
      "system", "popen", "getaddrinfo",
  };
  return b;
}

// Condition-variable wait family: blocking, but exempt w.r.t. the lock
// passed as the first argument (released for the duration of the wait).
bool is_cv_wait(const std::string& n) {
  return n == "wait" || n == "wait_for" || n == "wait_until";
}

bool ends_with_path(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool type_is_stream(const std::string& type) {
  return type.find("ofstream") != std::string::npos ||
         type.find("fstream") != std::string::npos ||
         type.find("ostream") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Pass 2: structure. One linear walk per file with a scope stack classifies
// every '{' (namespace / class / enum / function / lambda / plain block),
// fills the class tables (members, guarded-by, mutex decls, method decls
// with annotations) and records function definitions with body ranges.
// ---------------------------------------------------------------------------

enum class ScopeKind { file, ns, cls, en, func, lambda, block };

struct Scope {
  ScopeKind kind;
  std::string name;       // class/namespace name
  std::string access;     // class scope: current access specifier
  std::size_t func_idx = 0;  // func/lambda scope: index into g.funcs
};

bool tok_is(const std::vector<Tok>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].text == s;
}

// Walk back from a '(' over annotation macros / cv-qualifiers between a
// parameter list and the body brace. `i` points at '{'. Returns the index
// of the ')' closing the parameter list, or npos.
std::size_t skip_back_to_paramlist_close(const std::vector<Tok>& t, std::size_t i) {
  static const std::unordered_set<std::string> skippable = {
      "const", "noexcept", "override", "final", "mutable", "&", "&&",
  };
  std::size_t j = i;  // t[i] == '{'
  while (j > 0) {
    --j;
    const std::string& s = t[j].text;
    if (s == ")") {
      // Either the param list or an annotation macro's arg list: if the
      // token before the matching '(' is an all-caps VINE_* macro name (or
      // `noexcept`), skip the group and continue walking.
      int depth = 1;
      std::size_t k = j;
      while (k > 0 && depth > 0) {
        --k;
        if (t[k].text == ")") ++depth;
        if (t[k].text == "(") --depth;
      }
      if (k > 0) {
        const std::string& before = t[k - 1].text;
        if (before.rfind("VINE_", 0) == 0 || before == "noexcept") {
          j = k;  // continue scanning left of the macro name
          continue;
        }
      }
      return j;
    }
    if (skippable.count(s)) continue;
    if (s.rfind("VINE_", 0) == 0) continue;  // parenless macro
    if (s == "->") {  // trailing return type: keep walking
      continue;
    }
    if (t[j].is_ident) continue;  // trailing-return-type tokens
    if (s == "::" || s == "<" || s == ">" || s == ",") continue;
    return std::string::npos;
  }
  return std::string::npos;
}

std::size_t match_open_paren(const std::vector<Tok>& t, std::size_t close) {
  int depth = 1;
  std::size_t k = close;
  while (k > 0 && depth > 0) {
    --k;
    if (t[k].text == ")") ++depth;
    if (t[k].text == "(") --depth;
  }
  return depth == 0 ? k : std::string::npos;
}

// Given the index of a candidate function-name ident, walk back over a ctor
// init list (": a_(x), b_(y)") if present. Returns the index of the real
// function-name ident.
std::size_t resolve_ctor_init_list(const std::vector<Tok>& t, std::size_t name_idx) {
  std::size_t idx = name_idx;
  for (int guard = 0; guard < 64; ++guard) {
    if (idx == 0) return idx;
    const std::string& prev = t[idx - 1].text;
    if (prev != ":" && prev != ",") return idx;
    if (prev == ":" && idx >= 2 && t[idx - 2].text == ")") {
      // ") :" — end of the param list, the init list starts here.
      std::size_t open = match_open_paren(t, idx - 2);
      if (open == std::string::npos || open == 0) return idx;
      return t[open - 1].is_ident ? open - 1 : idx;
    }
    if (prev == ",") {
      // Previous init-list element: "ident ( ... ) ," or "ident { ... } ,"
      if (idx < 3) return idx;
      std::size_t close = idx - 2;
      if (t[close].text != ")" && t[close].text != "}") return idx;
      const char* open_c = t[close].text == ")" ? "(" : "{";
      const char* close_c = t[close].text == ")" ? ")" : "}";
      int depth = 1;
      std::size_t k = close;
      while (k > 0 && depth > 0) {
        --k;
        if (t[k].text == close_c) ++depth;
        if (t[k].text == open_c) --depth;
      }
      if (depth != 0 || k == 0) return idx;
      idx = k - 1;  // the element's ident
      if (!t[idx].is_ident) return name_idx;
      continue;
    }
    return idx;
  }
  return idx;
}

struct StructureParser {
  Graph& g;
  std::size_t file_idx;
  const std::vector<Tok>& t;
  std::vector<Scope> scopes;
  std::size_t stmt_start = 0;  // token index of current statement head

  StructureParser(Graph& graph, std::size_t fi)
      : g(graph), file_idx(fi), t(graph.files[fi].toks) {
    scopes.push_back({ScopeKind::file, "", "", 0});
  }

  const std::string& rel() const { return g.files[file_idx].rel; }

  std::string enclosing_class() const {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeKind::cls) return it->name;
      if (it->kind == ScopeKind::func || it->kind == ScopeKind::lambda) {
        const FuncInfo& f = g.funcs[it->func_idx];
        if (!f.cls.empty()) return f.cls;
      }
    }
    static const std::string empty;
    return empty;
  }

  // Parse "VINE_REQUIRES ( expr )" / "VINE_NO_THREAD_SAFETY_ANALYSIS"
  // between `from` and `to` (e.g. between param-list ')' and body '{').
  void collect_annotations(std::size_t from, std::size_t to, const std::string& cls,
                           std::vector<std::string>* reqs, bool* no_analysis) {
    for (std::size_t i = from; i < to && i < t.size(); ++i) {
      if (t[i].text == "VINE_NO_THREAD_SAFETY_ANALYSIS") *no_analysis = true;
      if (t[i].text == "VINE_REQUIRES" && tok_is(t, i + 1, "(")) {
        std::size_t j = i + 2;
        std::string cur;
        int depth = 1;
        while (j < t.size() && depth > 0) {
          if (t[j].text == "(") ++depth;
          if (t[j].text == ")") --depth;
          if (depth == 0) break;
          if (t[j].text == ",") {
            if (!cur.empty()) reqs->push_back(cls.empty() ? cur : cls + "::" + cur);
            cur.clear();
          } else if (t[j].is_ident) {
            cur = t[j].text;  // last ident wins (handles this->m_)
          }
          ++j;
        }
        if (!cur.empty()) reqs->push_back(cls.empty() ? cur : cls + "::" + cur);
      }
    }
  }

  // Called at each ';' or '{' or '}' in class scope to digest the statement
  // in [stmt_start, end) as a member/method declaration.
  void digest_class_member(std::size_t end, bool is_body_brace) {
    Scope& cs = scopes.back();
    ClassInfo& ci = g.classes[cs.name];
    std::size_t b = stmt_start;
    if (b >= end) return;
    // Access specifiers handled by caller; skip labels here.
    static const std::unordered_set<std::string> skip_heads = {
        "using", "typedef", "friend", "static_assert", "public", "private",
        "protected", "template", "enum",
    };
    if (skip_heads.count(t[b].text)) return;
    if (t[b].text == "operator") return;

    // Find the method-name '(' at angle-depth 0.
    int angle = 0;
    std::size_t paren = std::string::npos;
    for (std::size_t i = b; i < end; ++i) {
      const std::string& s = t[i].text;
      if (s == "<") {
        if (i > b && t[i - 1].is_ident) ++angle;
      } else if (s == ">") {
        if (angle > 0) --angle;
      } else if (s == "(" && angle == 0) {
        paren = i;
        break;
      } else if (s == "=" && angle == 0) {
        break;  // default member initializer: data member
      } else if (s == "VINE_GUARDED_BY" && angle == 0) {
        break;  // data member
      }
    }

    if (paren != std::string::npos && paren > b && t[paren - 1].is_ident &&
        t[paren - 1].text != "VINE_GUARDED_BY") {
      const std::string& mname = t[paren - 1].text;
      if (mname == cs.name || (paren >= 2 && t[paren - 2].text == "~")) {
        ci.method_names.insert(mname);
        return;  // ctor/dtor decl
      }
      if (keywords().count(mname)) return;
      ci.method_names.insert(mname);
      // Annotations between the ')' of the params and the end of the stmt.
      int depth = 1;
      std::size_t j = paren + 1;
      while (j < end && depth > 0) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        ++j;
      }
      std::vector<std::string> reqs;
      bool noan = false;
      collect_annotations(j, end, cs.name, &reqs, &noan);
      const std::string key = cs.name + "::" + mname;
      if (!reqs.empty()) g.decl_requires[key] = reqs;
      if (noan) g.decl_no_analysis.insert(key);
      (void)is_body_brace;
      return;
    }

    // Data member. Mutex declarations first.
    //   [mutable] Mutex name { [lock_rank::] Rank :: rankname } ;
    //   [mutable] std::mutex name ;
    for (std::size_t i = b; i < end; ++i) {
      bool vine_mutex = t[i].text == "Mutex" &&
                        (i == b || t[i - 1].text != "::" || tok_is(t, i - 2, "vine"));
      bool std_mutex = t[i].text == "mutex" && i >= 2 && t[i - 1].text == "::" &&
                       t[i - 2].text == "std";
      if ((vine_mutex || std_mutex) && i + 1 < end && t[i + 1].is_ident) {
        const std::string& mname = t[i + 1].text;
        std::string rank;
        for (std::size_t j = i + 2; j < end; ++j) {
          if (t[j].text == "Rank" && tok_is(t, j + 1, "::") && j + 2 < end &&
              t[j + 2].is_ident) {
            rank = t[j + 2].text;
            break;
          }
        }
        MutexDecl d;
        d.id = cs.name + "::" + mname;
        d.rank = rank;
        d.file = rel();
        d.line = t[i].line;
        d.is_raw_std = std_mutex;
        g.mutexes[d.id] = d;
        ci.mutexes.push_back(mname);
        ci.member_types[mname] = std_mutex ? "std::mutex" : "vine::Mutex";
        return;
      }
    }

    // VINE_GUARDED_BY member:  type name VINE_GUARDED_BY(mutex_);
    for (std::size_t i = b; i < end; ++i) {
      if (t[i].text == "VINE_GUARDED_BY" && i > b && t[i - 1].is_ident) {
        const std::string& mname = t[i - 1].text;
        std::string guard;
        for (std::size_t j = i + 1; j < end && t[j].text != ")"; ++j) {
          if (t[j].is_ident) guard = t[j].text;
        }
        if (!guard.empty()) ci.guarded[mname] = cs.name + "::" + guard;
        std::string type;
        for (std::size_t j = b; j + 1 < i; ++j) {
          type += t[j].text;
          type += ' ';
        }
        ci.member_types[mname] = type;
        return;
      }
    }

    // Plain data member: the name is the last ident before the ';' once any
    // brace-initializer group ({...}) is skipped; the rest is the type.
    std::size_t name_i = std::string::npos;
    for (std::size_t i = end; i > b;) {
      --i;
      if (t[i].text == "}") {  // skip a balanced {...} initializer
        int d2 = 1;
        while (i > b && d2 > 0) {
          --i;
          if (t[i].text == "}") ++d2;
          if (t[i].text == "{") --d2;
        }
        continue;
      }
      if (t[i].is_ident && !keywords().count(t[i].text)) {
        name_i = i;
        break;
      }
      if (t[i].text == ")") break;  // function-ish: not a data member
    }
    if (name_i != std::string::npos && name_i > b) {
      std::string type;
      for (std::size_t j = b; j < name_i; ++j) {
        type += t[j].text;
        type += ' ';
      }
      ci.member_types[t[name_i].text] = type;
    }
  }

  // Namespace-scope mutex in a .cpp: Mutex g_mutex{Rank::logging};
  void digest_global(std::size_t end) {
    std::size_t b = stmt_start;
    for (std::size_t i = b; i < end; ++i) {
      bool vine_mutex = t[i].text == "Mutex" &&
                        (i == b || t[i - 1].text != "::" || tok_is(t, i - 2, "vine"));
      if (vine_mutex && i + 1 < end && t[i + 1].is_ident) {
        const std::string& mname = t[i + 1].text;
        std::string rank;
        for (std::size_t j = i + 2; j < end; ++j) {
          if (t[j].text == "Rank" && tok_is(t, j + 1, "::") && j + 2 < end &&
              t[j + 2].is_ident) {
            rank = t[j + 2].text;
            break;
          }
        }
        MutexDecl d;
        d.id = rel() + "::" + mname;
        d.rank = rank;
        d.file = rel();
        d.line = t[i].line;
        g.mutexes[d.id] = d;
        g.file_globals[rel()][mname] = d.id;
        return;
      }
    }
  }

  // Classify the '{' at index i and push the right scope. Returns true when
  // a scope was pushed; false when the brace is a member/global initializer
  // (Mutex m_{Rank::x}) — the caller then skips to the matching '}' without
  // resetting the statement head, so the declaration parses as one unit.
  bool on_open_brace(std::size_t i) {
    // Statement head since last ';'/'{'/'}'.
    std::size_t b = stmt_start;
    ScopeKind parent = scopes.back().kind;

    // enum?
    for (std::size_t j = b; j < i; ++j) {
      if (t[j].text == "enum") {
        scopes.push_back({ScopeKind::en, "", "", 0});
        return true;
      }
    }
    // namespace?
    if (b < i && t[b].text == "namespace") {
      std::string nsname = (b + 1 < i && t[b + 1].is_ident) ? t[b + 1].text : "";
      scopes.push_back({ScopeKind::ns, nsname, "", 0});
      return true;
    }
    // class/struct? Last class|struct keyword followed by an ident.
    if (parent != ScopeKind::func && parent != ScopeKind::lambda &&
        parent != ScopeKind::block) {
      std::size_t cls_kw = std::string::npos;
      for (std::size_t j = b; j < i; ++j) {
        if ((t[j].text == "class" || t[j].text == "struct") && j + 1 < i &&
            t[j + 1].is_ident) {
          cls_kw = j;
        }
      }
      if (cls_kw != std::string::npos) {
        // name = last ident of the A::B::Name chain after the keyword,
        // skipping attribute macros (class VINE_CAPABILITY("x") Mutex).
        std::size_t j = cls_kw + 1;
        while (j < i && t[j].is_ident && t[j].text.rfind("VINE_", 0) == 0) {
          ++j;
          if (j < i && t[j].text == "(") {
            int d2 = 1;
            ++j;
            while (j < i && d2 > 0) {
              if (t[j].text == "(") ++d2;
              if (t[j].text == ")") --d2;
              ++j;
            }
          }
        }
        if (j >= i || !t[j].is_ident) {
          scopes.push_back({ScopeKind::block, "", "", 0});
          return true;
        }
        std::string cname = t[j].text;
        ++j;
        while (j + 1 < i && t[j].text == "::" && t[j + 1].is_ident) {
          cname = t[j + 1].text;
          j += 2;
        }
        Scope s{ScopeKind::cls, cname, "", 0};
        // struct default public, class default private
        s.access = t[cls_kw].text == "struct" ? "public" : "private";
        g.classes.emplace(cname, ClassInfo{}).first->second.name = cname;
        scopes.push_back(s);
        return true;
      }
    }

    // lambda?  "] {"  or  "] ( ... ) {"  (optionally with specifiers between)
    {
      std::size_t j = i;
      bool lambda = false;
      if (j > 0 && t[j - 1].text == "]") lambda = true;
      if (!lambda && j > 0) {
        std::size_t k = j - 1;
        // skip mutable/noexcept/-> type between ')' and '{'
        while (k > 0 && (t[k].text == "mutable" || t[k].text == "noexcept" ||
                         t[k].is_ident || t[k].text == "::" || t[k].text == "->" ||
                         t[k].text == "<" || t[k].text == ">")) {
          --k;
        }
        if (t[k].text == ")") {
          std::size_t open = match_open_paren(t, k);
          if (open != std::string::npos && open > 0 && t[open - 1].text == "]") {
            lambda = true;
          }
        }
      }
      if (lambda) {
        FuncInfo f;
        const std::string cls = enclosing_class();
        std::string host = "<file>";
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
          if (it->kind == ScopeKind::func || it->kind == ScopeKind::lambda) {
            host = g.funcs[it->func_idx].qual;
            break;
          }
        }
        f.cls = cls;
        f.name = "<lambda>";
        f.qual = host + "::<lambda@" + std::to_string(t[i].line) + ">";
        f.file = rel();
        f.file_idx = file_idx;
        f.line = t[i].line;
        f.body_begin = i + 1;
        g.funcs.push_back(f);
        scopes.push_back({ScopeKind::lambda, "", "", g.funcs.size() - 1});
        return true;
      }
    }

    // Function definition? Only at file/ns/class scope; inside a function,
    // a ')' '{' pair is control flow.
    if (parent == ScopeKind::file || parent == ScopeKind::ns ||
        parent == ScopeKind::cls) {
      std::size_t close = skip_back_to_paramlist_close(t, i);
      if (close != std::string::npos && close >= b) {
        std::size_t open = match_open_paren(t, close);
        if (open != std::string::npos && open > 0 && t[open - 1].is_ident) {
          std::size_t name_i = open - 1;
          if (t[name_i].text == "VINE_REQUIRES") {
            // shouldn't happen (handled by skip), but be safe
          }
          name_i = resolve_ctor_init_list(t, name_i);
          if (t[name_i].is_ident && !keywords().count(t[name_i].text)) {
            FuncInfo f;
            f.name = t[name_i].text;
            // Qualifier chain: A :: B :: name
            std::string cls;
            std::size_t q = name_i;
            bool dtor = q > 0 && t[q - 1].text == "~";
            if (dtor) --q;
            while (q >= 2 && t[q - 1].text == "::" && t[q - 2].is_ident) {
              cls = t[q - 2].text;
              q -= 2;
              break;  // nearest qualifier is the class
            }
            if (cls.empty() && parent == ScopeKind::cls) cls = scopes.back().name;
            f.cls = cls;
            f.qual = cls.empty() ? f.name : cls + "::" + f.name;
            f.file = rel();
            f.file_idx = file_idx;
            f.line = t[name_i].line;
            f.body_begin = i + 1;
            f.is_ctor_dtor = dtor || (!cls.empty() && f.name == cls);
            // Annotations: between the params ')' and the '{' (definitions),
            // plus any recorded on the in-class declaration.
            collect_annotations(close + 1, i, cls, &f.requires_, &f.no_analysis);
            auto rit = g.decl_requires.find(f.qual);
            if (rit != g.decl_requires.end()) {
              for (const auto& r : rit->second) {
                if (std::find(f.requires_.begin(), f.requires_.end(), r) ==
                    f.requires_.end()) {
                  f.requires_.push_back(r);
                }
              }
            }
            if (g.decl_no_analysis.count(f.qual)) f.no_analysis = true;
            if (parent == ScopeKind::cls && !scopes.back().name.empty()) {
              g.classes[scopes.back().name].method_names.insert(f.name);
            }
            g.funcs.push_back(f);
            scopes.push_back({ScopeKind::func, "", "", g.funcs.size() - 1});
            return true;
          }
        }
      }
    }

    if (parent == ScopeKind::func || parent == ScopeKind::lambda ||
        parent == ScopeKind::block) {
      scopes.push_back({ScopeKind::block, "", "", 0});
      return true;
    }
    return false;  // initializer brace at class/namespace/file scope
  }

  void run() {
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::string& s = t[i].text;
      if (s == "{") {
        if (on_open_brace(i)) {
          stmt_start = i + 1;
          continue;
        }
        // Initializer brace: skip to the matching '}' so the enclosing
        // declaration reaches its ';' digest intact.
        int depth = 1;
        while (i + 1 < t.size() && depth > 0) {
          ++i;
          if (t[i].text == "{") ++depth;
          if (t[i].text == "}") --depth;
        }
        continue;
      }
      if (s == "}") {
        if (scopes.size() > 1) {
          Scope done = scopes.back();
          scopes.pop_back();
          if (done.kind == ScopeKind::func || done.kind == ScopeKind::lambda) {
            g.funcs[done.func_idx].body_end = i;
          }
        }
        stmt_start = i + 1;
        continue;
      }
      if (s == ";") {
        if (scopes.back().kind == ScopeKind::cls) {
          digest_class_member(i, false);
        } else if (scopes.back().kind == ScopeKind::file ||
                   scopes.back().kind == ScopeKind::ns) {
          digest_global(i);
        }
        stmt_start = i + 1;
        continue;
      }
      if (scopes.back().kind == ScopeKind::cls && s == ":" && i > stmt_start &&
          (t[i - 1].text == "public" || t[i - 1].text == "private" ||
           t[i - 1].text == "protected")) {
        scopes.back().access = t[i - 1].text;
        stmt_start = i + 1;
        continue;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 3: function bodies. Lock scopes, call sites (with held-lock sets),
// direct blocking ops, guarded-member accesses.
// ---------------------------------------------------------------------------

struct HeldLock {
  std::string mutex_id;
  std::string guard_var;  // for UniqueLock vars passed to cv waits
  int depth = 0;          // brace depth at acquisition
};

struct BodyAnalyzer {
  Graph& g;
  std::size_t fidx;
  Analysis& out;
  // nested lambdas' ranges to skip while walking this function
  std::vector<std::pair<std::size_t, std::size_t>> skip_ranges;

  const FuncInfo& f() const { return g.funcs[fidx]; }
  const std::vector<Tok>& toks() const { return g.files[f().file_idx].toks; }

  // Resolve a mutex expression (tokens of the guard's ctor argument) to a
  // mutex id: member of the enclosing class, file-global, or raw text.
  std::string resolve_mutex_expr(const std::vector<std::string>& idents) {
    if (idents.empty()) return "";
    const std::string& name = idents.back();
    if (!f().cls.empty()) {
      auto cit = g.classes.find(f().cls);
      if (cit != g.classes.end()) {
        for (const auto& m : cit->second.mutexes) {
          if (m == name) return f().cls + "::" + name;
        }
      }
    }
    auto fg = g.file_globals.find(f().file);
    if (fg != g.file_globals.end()) {
      auto git = fg->second.find(name);
      if (git != fg->second.end()) return git->second;
    }
    // Receiver-qualified: other.mutex_ — resolve via the receiver's class.
    if (idents.size() >= 2) {
      const std::string owner_cls = class_of_member(idents[idents.size() - 2]);
      if (!owner_cls.empty()) return owner_cls + "::" + name;
    }
    // Unique across all classes?
    std::string found;
    for (const auto& [cname, ci] : g.classes) {
      for (const auto& m : ci.mutexes) {
        if (m == name) {
          if (!found.empty()) return name;  // ambiguous: raw
          found = cname + "::" + name;
        }
      }
    }
    return found.empty() ? name : found;
  }

  // Which class does a member name (uniquely) belong to?
  std::string class_of_member(const std::string& member) {
    // enclosing class first
    if (!f().cls.empty()) {
      auto cit = g.classes.find(f().cls);
      if (cit != g.classes.end() && cit->second.member_types.count(member)) {
        return type_to_class(cit->second.member_types.at(member));
      }
    }
    std::string found;
    for (const auto& [cname, ci] : g.classes) {
      if (ci.member_types.count(member)) {
        if (!found.empty()) return "";  // ambiguous
        found = type_to_class(ci.member_types.at(member));
      }
    }
    return found;
  }

  // Find a known class name inside a type spelling (handles unique_ptr<X>,
  // shared_ptr<obs::TraceSink>, MsgQueue<...>).
  std::string type_to_class(const std::string& type) {
    std::string best;
    std::size_t i = 0;
    while (i < type.size()) {
      if (std::isalpha(static_cast<unsigned char>(type[i])) || type[i] == '_') {
        std::size_t j = i;
        while (j < type.size() && (std::isalnum(static_cast<unsigned char>(type[j])) ||
                                   type[j] == '_')) {
          ++j;
        }
        std::string word = type.substr(i, j - i);
        if (g.classes.count(word)) best = word;  // last match wins (innermost)
        i = j;
      } else {
        ++i;
      }
    }
    return best;
  }

  bool in_skip(std::size_t i) const {
    for (const auto& [b, e] : skip_ranges) {
      if (i >= b && i < e) return true;
    }
    return false;
  }

  void run() {
    FuncInfo& fn = g.funcs[fidx];
    const std::vector<Tok>& t = toks();
    // Collect nested lambda bodies (they were registered as separate funcs).
    for (const auto& other : g.funcs) {
      if (&other == &fn) continue;
      if (other.file_idx == fn.file_idx && other.body_begin > fn.body_begin &&
          other.body_end <= fn.body_end && other.body_end != 0) {
        // direct or transitive nesting: skip either way
        skip_ranges.push_back({other.body_begin - 1, other.body_end + 1});
      }
    }

    std::vector<HeldLock> held;
    for (const auto& req : fn.requires_) {
      held.push_back({req, "", -1});
    }
    int depth = 0;

    auto held_ids = [&]() {
      std::vector<std::string> ids;
      for (const auto& h : held) ids.push_back(h.mutex_id);
      return ids;
    };

    const std::unordered_set<std::string> guard_classes = {
        "MutexLock", "UniqueLock", "lock_guard", "unique_lock", "scoped_lock",
    };

    for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (in_skip(i)) continue;
      const std::string& s = t[i].text;
      if (s == "{") {
        ++depth;
        continue;
      }
      if (s == "}") {
        --depth;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const HeldLock& h) { return h.depth > depth; }),
                   held.end());
        continue;
      }

      // Guard declaration: GuardClass var ( expr )  /  GuardClass var { expr }
      if (t[i].is_ident && guard_classes.count(s) && i + 1 < fn.body_end &&
          t[i + 1].is_ident &&
          (tok_is(t, i + 2, "(") || tok_is(t, i + 2, "{"))) {
        const bool paren = t[i + 2].text == "(";
        const char* open_c = paren ? "(" : "{";
        const char* close_c = paren ? ")" : "}";
        std::vector<std::string> idents;
        std::size_t j = i + 3;
        int d2 = 1;
        while (j < fn.body_end && d2 > 0) {
          if (t[j].text == open_c) ++d2;
          if (t[j].text == close_c) --d2;
          if (d2 == 0) break;
          if (t[j].is_ident && t[j].text != "this") idents.push_back(t[j].text);
          if (t[j].text == ",") break;  // adopt/defer tags: first arg only
          ++j;
        }
        std::string mid = resolve_mutex_expr(idents);
        if (!mid.empty()) {
          // Record edges: every already-held lock precedes this acquisition.
          for (const auto& h : held_ids()) {
            if (h == mid) continue;
            g.lock_edges.push_back(
                {h, mid, fn.file, t[i].line, fn.qual + " acquires directly"});
          }
          fn.direct_acquires.insert(mid);
          held.push_back({mid, t[i + 1].text, depth});
        }
        i = j;
        continue;
      }

      // Direct ::syscall form  ("::" recv "(")
      if (s == "::" &&
          (i == fn.body_begin ||
           (!t[i - 1].is_ident && t[i - 1].text != ">" && t[i - 1].text != ")") ||
           keywords().count(t[i - 1].text)) &&
          i + 1 < fn.body_end && t[i + 1].is_ident &&
          blocking_roots().count(t[i + 1].text) && tok_is(t, i + 2, "(")) {
        if (!fn.blocks_directly) {
          fn.blocks_directly = true;
          fn.block_reason = "::" + t[i + 1].text;
          fn.block_line = t[i + 1].line;
        }
        if (!held.empty() && !fn.no_analysis) {
          for (const auto& h : held_ids()) {
            out.findings.push_back(
                {fn.file, t[i + 1].line, "blocking-under-lock",
                 fn.qual + " calls ::" + t[i + 1].text + " while holding " + h});
          }
        }
        i += 2;
        continue;
      }

      if (!t[i].is_ident || keywords().count(s)) continue;

      // Call?  name (   — gather receiver chain before it.
      if (tok_is(t, i + 1, "(")) {
        std::vector<std::string> recv;
        bool scoped = false;
        std::size_t j = i;
        while (j >= 2 && (t[j - 1].text == "." || t[j - 1].text == "->" ||
                          t[j - 1].text == "::")) {
          if (t[j - 1].text == "::") scoped = true;
          if (!t[j - 2].is_ident) break;
          recv.insert(recv.begin(), t[j - 2].text);
          j -= 2;
        }
        // cv wait: blocking, but exempt its own lock.
        std::string exempt;
        if (is_cv_wait(s)) {
          // first argument ident
          if (i + 2 < fn.body_end && t[i + 2].is_ident) {
            for (const auto& h : held) {
              if (h.guard_var == t[i + 2].text) exempt = h.mutex_id;
            }
          }
          if (!fn.blocks_directly) {
            fn.blocks_directly = true;
            fn.block_reason = "condition-variable " + s;
            fn.block_line = t[i].line;
          }
          if (!fn.no_analysis) {
            for (const auto& h : held_ids()) {
              if (h == exempt) continue;
              out.findings.push_back(
                  {fn.file, t[i].line, "blocking-under-lock",
                   fn.qual + " waits on a condition variable while holding " + h});
            }
          }
          continue;
        }
        CallSite cs;
        cs.caller = fidx;
        cs.callee_name = s;
        cs.receiver = recv;
        cs.scoped_qualified = scoped;
        cs.line = t[i].line;
        cs.held = held_ids();
        g.call_sites.push_back(cs);
        fn.calls.push_back(g.call_sites.size() - 1);
        continue;
      }

      // Stream write under lock: member of stream type followed by '<<' or
      // '.flush(' / '.open(' etc. (the call form is caught above via type
      // resolution; '<<' has no call syntax so handle it here).
      if (tok_is(t, i + 1, "<<")) {
        std::string owner_cls = f().cls;
        if (!owner_cls.empty()) {
          auto cit = g.classes.find(owner_cls);
          if (cit != g.classes.end()) {
            auto mt = cit->second.member_types.find(s);
            if (mt != cit->second.member_types.end() && type_is_stream(mt->second)) {
              if (!fn.blocks_directly) {
                fn.blocks_directly = true;
                fn.block_reason = "stream write to " + s;
                fn.block_line = t[i].line;
              }
              if (!held.empty() && !fn.no_analysis) {
                for (const auto& h : held_ids()) {
                  out.findings.push_back(
                      {fn.file, t[i].line, "blocking-under-lock",
                       fn.qual + " writes to stream " + s + " while holding " + h});
                }
              }
            }
          }
        }
      }

      // Guarded member access (unqualified or this->).
      if (!fn.cls.empty() && !fn.is_ctor_dtor && !fn.no_analysis) {
        bool qualified_other =
            i > fn.body_begin &&
            (t[i - 1].text == "." || t[i - 1].text == "->" || t[i - 1].text == "::") &&
            !(i >= 2 && t[i - 2].text == "this");
        if (!qualified_other) {
          auto cit = g.classes.find(fn.cls);
          if (cit != g.classes.end()) {
            auto git = cit->second.guarded.find(s);
            if (git != cit->second.guarded.end()) {
              bool covered = false;
              for (const auto& h : held) {
                if (h.mutex_id == git->second) covered = true;
              }
              if (!covered) {
                out.findings.push_back(
                    {fn.file, t[i].line, "unguarded-access",
                     fn.qual + " touches " + fn.cls + "::" + s + " (guarded by " +
                         git->second + ") without holding the guard; add a " +
                         "MutexLock or annotate with VINE_REQUIRES"});
              }
            }
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 4: call resolution + transitive propagation + whole-program reports.
// ---------------------------------------------------------------------------

struct Resolver {
  Graph& g;

  // Resolve a call site to candidate callee indices (union semantics: when
  // only the bare name is known and several classes define it, all of them
  // are candidates — conservative for blocking/acquisition propagation).
  std::vector<std::size_t> resolve(const CallSite& cs) {
    const FuncInfo& caller = g.funcs[cs.caller];
    // VINE_LOG_* macros expand to vine::logf.
    if (cs.callee_name.rfind("VINE_LOG", 0) == 0) {
      auto it = g.by_name.find("logf");
      if (it != g.by_name.end()) return it->second;
      return {};
    }
    // Explicit Class::name
    if (cs.scoped_qualified && !cs.receiver.empty()) {
      const std::string& qcls = cs.receiver.back();
      auto it = g.by_qual.find(qcls + "::" + cs.callee_name);
      if (it != g.by_qual.end()) return {it->second};
      return {};
    }
    // Receiver chain: resolve the receiver's class, then name in it.
    if (!cs.receiver.empty()) {
      std::string recv_cls = resolve_receiver_class(caller, cs.receiver);
      if (!recv_cls.empty()) {
        auto it = g.by_qual.find(recv_cls + "::" + cs.callee_name);
        if (it != g.by_qual.end()) return {it->second};
        // Known receiver class but unknown method (std type etc.): if the
        // class is one of ours and lacks the method, fall through to the
        // unique-name route; otherwise stop.
        if (!g.classes.count(recv_cls)) return {};
        if (!g.classes.at(recv_cls).method_names.count(cs.callee_name)) {
          return fallback_by_name(cs, /*allow_generic=*/false);
        }
        return {};
      }
      return fallback_by_name(cs, /*allow_generic=*/false);
    }
    // Unqualified: enclosing class method, then free function, then unique.
    if (!caller.cls.empty()) {
      auto it = g.by_qual.find(caller.cls + "::" + cs.callee_name);
      if (it != g.by_qual.end()) return {it->second};
    }
    {
      auto it = g.by_qual.find(cs.callee_name);
      if (it != g.by_qual.end()) return {it->second};
    }
    return fallback_by_name(cs, /*allow_generic=*/false);
  }

  std::vector<std::size_t> fallback_by_name(const CallSite& cs, bool allow_generic) {
    if (!allow_generic && generic_methods().count(cs.callee_name)) return {};
    auto it = g.by_name.find(cs.callee_name);
    if (it == g.by_name.end()) return {};
    return it->second;  // union over all definitions
  }

  std::string resolve_receiver_class(const FuncInfo& caller,
                                     const std::vector<std::string>& chain) {
    std::string cur_cls = caller.cls;
    std::string resolved;
    for (std::size_t step = 0; step < chain.size(); ++step) {
      const std::string& name = chain[step];
      std::string next;
      if (!cur_cls.empty() && g.classes.count(cur_cls) &&
          g.classes.at(cur_cls).member_types.count(name)) {
        next = find_class_in_type(g.classes.at(cur_cls).member_types.at(name));
      } else {
        // unique member name across all classes
        std::string found_type;
        int hits = 0;
        for (const auto& [cname, ci] : g.classes) {
          auto mt = ci.member_types.find(name);
          if (mt != ci.member_types.end()) {
            ++hits;
            found_type = mt->second;
          }
        }
        if (hits == 1) next = find_class_in_type(found_type);
      }
      if (next.empty()) return step + 1 == chain.size() ? resolved : "";
      resolved = next;
      cur_cls = next;
    }
    return resolved;
  }

  std::string find_class_in_type(const std::string& type) {
    std::string best;
    std::size_t i = 0;
    while (i < type.size()) {
      if (std::isalpha(static_cast<unsigned char>(type[i])) || type[i] == '_') {
        std::size_t j = i;
        while (j < type.size() && (std::isalnum(static_cast<unsigned char>(type[j])) ||
                                   type[j] == '_')) {
          ++j;
        }
        std::string word = type.substr(i, j - i);
        if (g.classes.count(word)) best = word;
        i = j;
      } else {
        ++i;
      }
    }
    return best;
  }
};

int rank_of(const Graph& g, const std::string& mutex_id) {
  auto it = g.mutexes.find(mutex_id);
  if (it == g.mutexes.end() || it->second.rank.empty()) return -1;
  auto rv = g.rank_values.find(it->second.rank);
  return rv == g.rank_values.end() ? -1 : rv->second;
}

std::string rank_name_of(const Graph& g, const std::string& mutex_id) {
  auto it = g.mutexes.find(mutex_id);
  return it == g.mutexes.end() ? "" : it->second.rank;
}

// Parse `enum class Rank ... { name = value, ... }` from lock_rank.hpp.
void parse_rank_enum(Graph& g) {
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    const auto& t = g.files[fi].toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].text == "enum" && i + 2 < t.size() && t[i + 1].text == "class" &&
          t[i + 2].text == "Rank") {
        // find '{'
        std::size_t j = i + 3;
        while (j < t.size() && t[j].text != "{") ++j;
        ++j;
        while (j < t.size() && t[j].text != "}") {
          if (t[j].is_ident && tok_is(t, j + 1, "=") && j + 2 < t.size()) {
            g.rank_values[t[j].text] = std::atoi(t[j + 2].text.c_str());
            j += 3;
          } else {
            ++j;
          }
        }
        return;
      }
    }
  }
}

// Tarjan SCC over the instance-level lock graph.
void report_cycles(const Graph& g, Analysis& out) {
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, const LockEdge*> sample;
  for (const auto& e : g.lock_edges) {
    if (e.from == e.to) continue;
    adj[e.from].insert(e.to);
    adj[e.to];  // ensure node
    auto key = std::make_pair(e.from, e.to);
    if (!sample.count(key)) sample[key] = &e;
  }
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int counter = 0;
  std::vector<std::vector<std::string>> sccs;

  // iterative Tarjan
  struct Frame {
    std::string v;
    std::set<std::string>::const_iterator it, end;
  };
  for (const auto& [start, _] : adj) {
    if (index.count(start)) continue;
    std::vector<Frame> st;
    index[start] = low[start] = counter++;
    stack.push_back(start);
    on_stack[start] = true;
    st.push_back({start, adj[start].begin(), adj[start].end()});
    while (!st.empty()) {
      Frame& fr = st.back();
      if (fr.it != fr.end) {
        std::string w = *fr.it;
        ++fr.it;
        if (!index.count(w)) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          st.push_back({w, adj[w].begin(), adj[w].end()});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], index[w]);
        }
      } else {
        if (low[fr.v] == index[fr.v]) {
          std::vector<std::string> scc;
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == fr.v) break;
          }
          if (scc.size() > 1) sccs.push_back(scc);
        }
        std::string v = fr.v;
        st.pop_back();
        if (!st.empty()) low[st.back().v] = std::min(low[st.back().v], low[v]);
      }
    }
  }
  for (auto& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    std::string cyc;
    for (const auto& m : scc) {
      if (!cyc.empty()) cyc += " <-> ";
      cyc += m;
    }
    // anchor the finding at one sample edge inside the SCC
    const LockEdge* where = nullptr;
    for (const auto& a : scc) {
      for (const auto& b : scc) {
        auto it = sample.find({a, b});
        if (it != sample.end()) {
          where = it->second;
          break;
        }
      }
      if (where) break;
    }
    out.findings.push_back({where ? where->file : "<graph>",
                            where ? where->line : 0, "lock-cycle",
                            "lock-order cycle: " + cyc +
                                " — a deadlock is reachable; break the cycle or "
                                "re-rank the mutexes"});
  }
}

std::string emit_rank_table(const Graph& g) {
  std::ostringstream os;
  // declared ranks sorted by value
  std::vector<std::pair<int, std::string>> ranks;
  for (const auto& [name, value] : g.rank_values) ranks.push_back({value, name});
  std::sort(ranks.begin(), ranks.end());
  for (const auto& [value, name] : ranks) {
    os << "rank " << value << ' ' << name << '\n';
  }
  // observed rank-level constraints, deduped, sorted
  std::set<std::pair<std::string, std::string>> constraints;
  for (const auto& e : g.lock_edges) {
    std::string rf = rank_name_of(g, e.from);
    std::string rt = rank_name_of(g, e.to);
    if (rf.empty() || rt.empty() || rf == rt) continue;
    constraints.insert({rf, rt});
  }
  std::vector<std::pair<std::string, std::string>> sorted(constraints.begin(),
                                                          constraints.end());
  std::sort(sorted.begin(), sorted.end(),
            [&](const auto& a, const auto& b) {
              int av = g.rank_values.count(a.first) ? g.rank_values.at(a.first) : 0;
              int bv = g.rank_values.count(b.first) ? g.rank_values.at(b.first) : 0;
              if (av != bv) return av < bv;
              int aw = g.rank_values.count(a.second) ? g.rank_values.at(a.second) : 0;
              int bw = g.rank_values.count(b.second) ? g.rank_values.at(b.second) : 0;
              return aw < bw;
            });
  for (const auto& [a, b] : sorted) {
    os << "order " << a << " < " << b << '\n';
  }
  return os.str();
}

}  // namespace

Analysis analyze_tree(const fs::path& root, const Options& opts) {
  Analysis out;
  Graph g;

  // ---- load + lex ----
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    auto ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    FileUnit fu;
    fu.rel = fs::relative(p, root).generic_string();
    fu.toks = tokenize(code_view(ss.str()));
    g.files.push_back(std::move(fu));
  }
  out.files_scanned = g.files.size();

  parse_rank_enum(g);

  // ---- structure ----
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    StructureParser sp(g, fi);
    sp.run();
  }
  out.functions_indexed = g.funcs.size();
  out.mutexes_indexed = g.mutexes.size();

  // Re-attach declaration annotations parsed after a definition was seen
  // (hpp processed after cpp, or in-class decl after out-of-class def).
  for (auto& fn : g.funcs) {
    auto rit = g.decl_requires.find(fn.qual);
    if (rit != g.decl_requires.end()) {
      for (const auto& r : rit->second) {
        if (std::find(fn.requires_.begin(), fn.requires_.end(), r) ==
            fn.requires_.end()) {
          fn.requires_.push_back(r);
        }
      }
    }
    if (g.decl_no_analysis.count(fn.qual)) fn.no_analysis = true;
  }

  // indices
  for (std::size_t i = 0; i < g.funcs.size(); ++i) {
    g.by_name[g.funcs[i].name].push_back(i);
    g.by_qual.emplace(g.funcs[i].qual, i);  // first definition wins
  }

  // unranked / raw std::mutex members. The vine::Mutex wrapper itself owns
  // the one legitimate raw std::mutex (its impl_).
  for (const auto& [id, d] : g.mutexes) {
    if (ends_with_path(d.file, "common/mutex.hpp")) continue;
    if (d.is_raw_std) {
      out.findings.push_back(
          {d.file, d.line, "unranked-mutex",
           id + " is a raw std::mutex; use vine::Mutex with a lock_rank::Rank "
                "so the analyzer and the runtime checker can order it"});
    } else if (d.rank.empty()) {
      out.findings.push_back(
          {d.file, d.line, "unranked-mutex",
           id + " has no lock_rank::Rank tag; every vine::Mutex must declare "
                "its place in the global order"});
    } else if (!g.rank_values.empty() && !g.rank_values.count(d.rank)) {
      out.findings.push_back(
          {d.file, d.line, "unknown-rank",
           id + " uses rank '" + d.rank + "' which is not declared in "
                "lock_rank::Rank"});
    }
  }

  // ---- bodies ----
  for (std::size_t i = 0; i < g.funcs.size(); ++i) {
    if (g.funcs[i].body_end == 0) continue;
    BodyAnalyzer ba{g, i, out, {}};
    ba.run();
  }

  // ---- call resolution ----
  Resolver r{g};
  std::vector<std::vector<std::size_t>> resolved(g.call_sites.size());
  for (std::size_t i = 0; i < g.call_sites.size(); ++i) {
    resolved[i] = r.resolve(g.call_sites[i]);
    out.call_edges += resolved[i].size();
  }

  // blocking roots by bare callee name (thread.join(), sleep_for(), fsutil)
  for (std::size_t i = 0; i < g.call_sites.size(); ++i) {
    const CallSite& cs = g.call_sites[i];
    FuncInfo& caller = g.funcs[cs.caller];
    bool root = false;
    std::string why;
    if (blocking_roots().count(cs.callee_name) && resolved[i].empty()) {
      // Unresolved send/recv/read/write etc. are almost always the socket
      // or stream form; resolved ones propagate through the callee instead.
      root = true;
      why = cs.callee_name + "()";
    }
    for (std::size_t callee : resolved[i]) {
      if (g.funcs[callee].file.find("fsutil") != std::string::npos) {
        root = true;  // file I/O helpers
        why = "file I/O via " + g.funcs[callee].qual;
      }
    }
    if (root) {
      if (!caller.blocks_directly) {
        caller.blocks_directly = true;
        caller.block_reason = why;
        caller.block_line = cs.line;
      }
      if (!cs.held.empty() && !caller.no_analysis) {
        for (const auto& h : cs.held) {
          out.findings.push_back(
              {caller.file, cs.line, "blocking-under-lock",
               caller.qual + " reaches blocking " + why + " while holding " + h});
        }
      }
    }
  }

  // ---- transitive propagation (fixpoint over the call graph) ----
  for (auto& fn : g.funcs) {
    fn.may_block = fn.blocks_directly;
    fn.trans_acquires = fn.direct_acquires;
  }
  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < 64) {
    changed = false;
    for (std::size_t ci = 0; ci < g.call_sites.size(); ++ci) {
      const CallSite& cs = g.call_sites[ci];
      FuncInfo& caller = g.funcs[cs.caller];
      for (std::size_t callee_i : resolved[ci]) {
        const FuncInfo& callee = g.funcs[callee_i];
        if (callee.may_block && !caller.may_block) {
          caller.may_block = true;
          caller.block_reason = "call to " + callee.qual + " (" +
                                callee.block_reason + ")";
          caller.block_line = cs.line;
          changed = true;
        }
        for (const auto& m : callee.trans_acquires) {
          if (caller.trans_acquires.insert(m).second) changed = true;
        }
      }
    }
  }

  // ---- held-across-call reports: lock edges + blocking-under-lock ----
  for (std::size_t ci = 0; ci < g.call_sites.size(); ++ci) {
    const CallSite& cs = g.call_sites[ci];
    if (cs.held.empty()) continue;
    const FuncInfo& caller = g.funcs[cs.caller];
    for (std::size_t callee_i : resolved[ci]) {
      const FuncInfo& callee = g.funcs[callee_i];
      // Lock edges: held -> everything the callee may acquire.
      for (const auto& m : callee.trans_acquires) {
        for (const auto& h : cs.held) {
          if (h == m) continue;
          g.lock_edges.push_back({h, m, caller.file, cs.line,
                                  caller.qual + " -> " + callee.qual});
        }
      }
      // Blocking: callee may block (its own cv waits already exempted
      // inside the callee; for the caller every held lock stays held).
      if (callee.may_block && !caller.no_analysis) {
        for (const auto& h : cs.held) {
          out.findings.push_back(
              {caller.file, cs.line, "blocking-under-lock",
               caller.qual + " calls " + callee.qual + " while holding " + h +
                   "; the callee may block (" + callee.block_reason + ")"});
        }
      }
    }
  }
  out.lock_edges = g.lock_edges.size();

  // ---- rank monotonicity over every edge ----
  {
    std::set<std::tuple<std::string, std::string, std::string, std::size_t>> seen;
    for (const auto& e : g.lock_edges) {
      int rf = rank_of(g, e.from);
      int rt = rank_of(g, e.to);
      if (rf < 0 || rt < 0) continue;
      if (rf < rt) continue;
      if (!seen.insert({e.from, e.to, e.file, e.line}).second) continue;
      std::string msg =
          e.to + " (rank " + std::to_string(rt) + ") acquired while " + e.from +
          " (rank " + std::to_string(rf) + ") is held via " + e.via +
          "; ranks must be strictly increasing";
      out.findings.push_back({e.file, e.line, "rank-inversion", msg});
    }
  }

  // ---- cycles ----
  report_cycles(g, out);

  // ---- canonical rank table + drift check ----
  out.rank_table = emit_rank_table(g);
  if (!opts.ranks_path.empty()) {
    std::ifstream rf(opts.ranks_path);
    if (!rf) {
      out.findings.push_back({opts.ranks_path, 0, "rank-table-drift",
                              "committed rank table is missing or unreadable"});
    } else {
      std::vector<std::string> committed;
      std::string line;
      while (std::getline(rf, line)) {
        // strip comments/blank
        auto h = line.find('#');
        if (h != std::string::npos) line = line.substr(0, h);
        while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
          line.pop_back();
        }
        if (!line.empty()) committed.push_back(line);
      }
      std::vector<std::string> emitted;
      std::istringstream es(out.rank_table);
      while (std::getline(es, line)) {
        if (!line.empty()) emitted.push_back(line);
      }
      if (committed != emitted) {
        std::string msg = "emitted rank table differs from " + opts.ranks_path + ":";
        std::size_t n = std::max(committed.size(), emitted.size());
        for (std::size_t i = 0; i < n; ++i) {
          std::string c = i < committed.size() ? committed[i] : "<missing>";
          std::string e = i < emitted.size() ? emitted[i] : "<missing>";
          if (c != e) msg += " [committed '" + c + "' vs emitted '" + e + "']";
        }
        out.findings.push_back({opts.ranks_path, 0, "rank-table-drift", msg});
      }
    }
  }

  std::sort(out.findings.begin(), out.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  out.findings.erase(
      std::unique(out.findings.begin(), out.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.path == b.path && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      out.findings.end());
  return out;
}

}  // namespace vine::analyze
