// vine_workbench — the shape x policy x fault-seed validation matrix
// (ISSUE: one command sweeping generated workflow shapes and the paper apps
// across scheduler policies, replication on/off, and seeded fault plans in
// the simulator). Every cell writes a schema-v2 obs trace, is re-validated
// through vine::obs::load_trace_file, and contributes one row to
// out/summary.json (format "vine-workbench-summary" v1), which
// `vine_report --workbench` renders as a table.
//
// Usage:
//   vine_workbench --out DIR
//     [--shapes chain,fanout,fanin,diamond,forkjoin,montage,epigenomics,
//               blast,topeft,colmena,bgd]     (default chain,fanout,fanin,diamond)
//     [--policies greedy,lookahead,random,roundrobin,firstfit]
//                                             (default greedy,lookahead)
//     [--replication off,on]                  (default off)
//     [--fault-seeds 0,5,11]                  (default 0; 0 = no faults)
//     [--workers N] [--cores C]               (default 8 workers x 4 cores)
//     [--tasks N]                             (generated shapes; default 24)
//     [--scale X]                             (multiplies --tasks; default 1)
//     [--seed S]                              (generator + sim seed; default 1)
//     [--apps]                                (append the four paper apps)
//     [--keep-going]                          (run every cell despite failures)
//
// Each generated shape's instance is exported once to out/<shape>.instance.json
// and replayed identically across its policy/replication/fault cells, so a
// row difference is the knob, not the workload. Exit codes: 0 all cells ok,
// 1 usage error, 2 at least one cell failed.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "apps/instances.hpp"
#include "common/faults.hpp"
#include "fsutil/fsutil.hpp"
#include "json/json.hpp"
#include "obs/schema.hpp"
#include "obs/trace_sink.hpp"
#include "wfgen/generator.hpp"
#include "wfgen/replay.hpp"

namespace {

using vine::wfgen::WorkflowInstance;

int usage() {
  std::fprintf(stderr,
               "usage: vine_workbench --out DIR [--shapes LIST] [--policies LIST]\n"
               "                      [--replication off,on] [--fault-seeds LIST]\n"
               "                      [--workers N] [--cores C] [--tasks N]\n"
               "                      [--scale X] [--seed S] [--apps] [--keep-going]\n");
  return 1;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_int(const std::string& s, int* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_double(const std::string& s, double* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Resolve a scheduler policy name; false on unknown names.
bool make_sched(const std::string& policy, vine::SchedulerConfig* out) {
  *out = vine::SchedulerConfig{};
  if (policy == "greedy") {
    out->placement = vine::PlacementPolicy::most_cached;
  } else if (policy == "lookahead") {
    out->placement = vine::PlacementPolicy::most_cached;
    out->lookahead.enabled = true;
  } else if (policy == "random") {
    out->placement = vine::PlacementPolicy::random;
  } else if (policy == "roundrobin") {
    out->placement = vine::PlacementPolicy::round_robin;
  } else if (policy == "firstfit") {
    out->placement = vine::PlacementPolicy::first_fit;
  } else {
    return false;
  }
  return true;
}

/// Build the instance for a matrix "shape": either a wfgen generated shape
/// or one of the four paper apps at workbench scale (small enough that the
/// full default matrix stays comfortably inside a CI smoke budget).
bool make_instance(const std::string& shape, std::uint64_t seed, int tasks,
                   WorkflowInstance* out) {
  if (shape == "blast") {
    vineapps::BlastParams p;
    p.tasks = std::max(4, tasks / 2);
    p.seed = seed;
    *out = vineapps::blast_instance(p);
    return true;
  }
  if (shape == "topeft") {
    vineapps::TopEftParams p;
    p.scale = 0.001;  // 4 data + 19 mc processors plus the accumulation tree
    p.seed = seed;
    *out = vineapps::topeft_instance(p);
    return true;
  }
  if (shape == "colmena") {
    vineapps::ColmenaParams p;
    p.inference_tasks = std::max(2, tasks / 4);
    p.simulation_tasks = std::max(4, tasks / 2);
    p.seed = seed;
    *out = vineapps::colmena_instance(p);
    return true;
  }
  if (shape == "bgd") {
    vineapps::BgdParams p;
    p.function_calls = std::max(4, tasks);
    p.seed = seed;
    *out = vineapps::bgd_instance(p);
    return true;
  }

  auto parsed = vine::wfgen::shape_from_string(shape);
  if (!parsed) return false;
  vine::wfgen::WorkloadSpec spec;
  spec.shape = *parsed;
  spec.seed = seed;
  spec.tasks = tasks;
  // Keep workbench byte sizes modest: the matrix measures scheduling and
  // recovery behavior, not fabric saturation.
  spec.input_bytes = vine::wfgen::Dist::pareto(2e6, 1.3, 1e4, 64e6);
  spec.output_bytes = vine::wfgen::Dist::pareto(4e6, 1.2, 1e4, 64e6);
  *out = vine::wfgen::generate(spec);
  return true;
}

struct Cell {
  std::string name;
  std::string shape;
  std::string policy;
  bool replication = false;
  std::uint64_t fault_seed = 0;
  std::string trace_file;  // relative to --out

  bool ok = false;
  std::string error;
  int tasks = 0;
  int tasks_done = 0;
  int tasks_unfinished = 0;
  double makespan = 0;
  std::int64_t events = 0;
  vinesim::SimStats stats{};
};

vine::json::Value cell_to_json(const Cell& c) {
  vine::json::Object o;
  o["cell"] = c.name;
  o["shape"] = c.shape;
  o["policy"] = c.policy;
  o["replication"] = c.replication;
  o["faultSeed"] = c.fault_seed;
  o["trace"] = c.trace_file;
  o["ok"] = c.ok;
  if (!c.error.empty()) o["error"] = c.error;
  o["tasks"] = c.tasks;
  o["tasksDone"] = c.tasks_done;
  o["tasksUnfinished"] = c.tasks_unfinished;
  o["makespan"] = c.makespan;
  o["events"] = c.events;
  o["bytesFromPeers"] = c.stats.bytes_from_peers;
  o["bytesFromManager"] = c.stats.bytes_from_manager;
  o["bytesPrefetch"] = c.stats.bytes_prefetch;
  o["prefetchHits"] = c.stats.prefetch_hits;
  o["replications"] = c.stats.replications;
  o["recoveries"] = c.stats.recoveries;
  o["workerCrashes"] = c.stats.worker_crashes;
  return vine::json::Value(std::move(o));
}

void run_cell(Cell* cell, const WorkflowInstance& inst,
              const std::filesystem::path& out_dir, std::uint64_t sim_seed,
              int workers, double cores) {
  cell->tasks = static_cast<int>(inst.tasks.size());

  vine::wfgen::ReplayOptions opt;
  opt.backend = vine::wfgen::Backend::sim;
  opt.workers = workers;
  opt.worker_cores = cores;
  opt.seed = sim_seed;
  if (!make_sched(cell->policy, &opt.sched)) {
    cell->error = "unknown policy \"" + cell->policy + "\"";
    return;
  }
  if (cell->replication) {
    opt.redundancy.enabled = true;
    opt.redundancy.replication_factor = 2;
  }

  vine::faults::FaultPlan plan;
  if (cell->fault_seed != 0) {
    vine::faults::FaultPlanConfig fp;
    fp.seed = cell->fault_seed;
    fp.workers = workers;
    fp.horizon = 8.0;
    fp.crashes = 2;
    fp.peer_faults = 2;
    fp.delays = 1;
    fp.rejoin_mean = 2.0;
    fp.stall_timeout = 0.5;
    plan = vine::faults::FaultPlan::generate(fp);
    opt.faults = &plan;
  }

  const std::filesystem::path trace_path = out_dir / cell->trace_file;
  opt.trace = std::make_shared<vine::obs::TraceSink>(vine::obs::TraceSinkOptions{
      .retain_events = false, .jsonl_path = trace_path.string()});

  auto result = vine::wfgen::run_workload(inst, opt);
  opt.trace.reset();  // flush + close the trace before validating it
  if (!result.ok()) {
    cell->error = result.error().message;
    return;
  }
  cell->tasks_done = result->tasks_done;
  cell->tasks_unfinished = result->tasks_unfinished;
  cell->makespan = result->makespan;
  cell->stats = result->sim_stats;

  auto events = vine::obs::load_trace_file(trace_path.string());
  if (!events.ok()) {
    cell->error = "trace invalid: " + events.error().message;
    return;
  }
  cell->events = static_cast<std::int64_t>(events->size());
  if (cell->events == 0) {
    cell->error = "trace is empty";
    return;
  }
  if (cell->tasks_unfinished != 0) {
    cell->error = std::to_string(cell->tasks_unfinished) + " tasks unfinished";
    return;
  }
  cell->ok = true;
}

void print_table(const std::vector<Cell>& cells) {
  std::printf("%-34s %6s %6s %10s %9s %9s %6s %6s %6s %8s  %s\n", "cell",
              "tasks", "done", "makespan", "peerMB", "mgrMB", "pfhit", "repl",
              "recov", "events", "status");
  for (const Cell& c : cells) {
    std::printf("%-34s %6d %6d %10.3f %9.1f %9.1f %6lld %6lld %6lld %8lld  %s\n",
                c.name.c_str(), c.tasks, c.tasks_done, c.makespan,
                static_cast<double>(c.stats.bytes_from_peers) / 1e6,
                static_cast<double>(c.stats.bytes_from_manager) / 1e6,
                static_cast<long long>(c.stats.prefetch_hits),
                static_cast<long long>(c.stats.replications),
                static_cast<long long>(c.stats.recoveries),
                static_cast<long long>(c.events),
                c.ok ? "ok" : ("FAIL: " + c.error).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir_arg;
  std::vector<std::string> shapes = {"chain", "fanout", "fanin", "diamond"};
  std::vector<std::string> policies = {"greedy", "lookahead"};
  std::vector<bool> replication = {false};
  std::vector<std::uint64_t> fault_seeds = {0};
  int workers = 8;
  double cores = 4;
  int tasks = 24;
  double scale = 1.0;
  std::uint64_t seed = 1;
  bool keep_going = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return ++i < argc ? argv[i] : nullptr; };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      out_dir_arg = v;
    } else if (arg == "--shapes") {
      const char* v = next();
      if (!v) return usage();
      shapes = split_list(v);
    } else if (arg == "--policies") {
      const char* v = next();
      if (!v) return usage();
      policies = split_list(v);
    } else if (arg == "--replication") {
      const char* v = next();
      if (!v) return usage();
      replication.clear();
      for (const std::string& r : split_list(v)) {
        if (r == "on") {
          replication.push_back(true);
        } else if (r == "off") {
          replication.push_back(false);
        } else {
          return usage();
        }
      }
    } else if (arg == "--fault-seeds") {
      const char* v = next();
      if (!v) return usage();
      fault_seeds.clear();
      for (const std::string& f : split_list(v)) {
        std::uint64_t fs = 0;
        if (!parse_u64(f, &fs)) return usage();
        fault_seeds.push_back(fs);
      }
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v || !parse_int(v, &workers) || workers <= 0) return usage();
    } else if (arg == "--cores") {
      const char* v = next();
      if (!v || !parse_double(v, &cores) || cores <= 0) return usage();
    } else if (arg == "--tasks") {
      const char* v = next();
      if (!v || !parse_int(v, &tasks) || tasks <= 0) return usage();
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v || !parse_double(v, &scale) || scale <= 0) return usage();
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v || !parse_u64(v, &seed)) return usage();
    } else if (arg == "--apps") {
      for (const char* app : {"blast", "topeft", "colmena", "bgd"}) {
        if (std::find(shapes.begin(), shapes.end(), app) == shapes.end()) {
          shapes.push_back(app);
        }
      }
    } else if (arg == "--keep-going") {
      keep_going = true;
    } else {
      return usage();
    }
  }
  if (out_dir_arg.empty() || shapes.empty() || policies.empty() ||
      replication.empty() || fault_seeds.empty()) {
    return usage();
  }

  const std::filesystem::path out_dir(out_dir_arg);
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir_arg.c_str(),
                 ec.message().c_str());
    return 1;
  }

  const int scaled_tasks =
      std::max(4, static_cast<int>(static_cast<double>(tasks) * scale));

  // One instance per shape, reused across every policy/replication/fault
  // cell of that shape and exported next to the traces for replayability.
  std::map<std::string, WorkflowInstance> instances;
  for (const std::string& shape : shapes) {
    WorkflowInstance inst;
    if (!make_instance(shape, seed, scaled_tasks, &inst)) {
      std::fprintf(stderr, "unknown shape \"%s\"\n", shape.c_str());
      return 1;
    }
    auto wrote = vine::write_file_atomic(out_dir / (shape + ".instance.json"),
                                         vine::wfgen::export_instance(inst));
    if (!wrote.ok()) {
      std::fprintf(stderr, "cannot write instance for %s: %s\n", shape.c_str(),
                   wrote.error().message.c_str());
      return 1;
    }
    instances.emplace(shape, std::move(inst));
  }

  std::vector<Cell> cells;
  bool any_failed = false;
  for (const std::string& shape : shapes) {
    for (const std::string& policy : policies) {
      for (bool rep : replication) {
        for (std::uint64_t fs : fault_seeds) {
          Cell cell;
          cell.shape = shape;
          cell.policy = policy;
          cell.replication = rep;
          cell.fault_seed = fs;
          cell.name = shape + "-" + policy + (rep ? "-repon" : "-repoff") +
                      "-f" + std::to_string(fs);
          cell.trace_file = cell.name + ".jsonl";
          run_cell(&cell, instances.at(shape), out_dir, seed, workers, cores);
          if (!cell.ok) {
            any_failed = true;
            std::fprintf(stderr, "cell %s FAILED: %s\n", cell.name.c_str(),
                         cell.error.c_str());
          }
          cells.push_back(std::move(cell));
          if (any_failed && !keep_going) goto done;
        }
      }
    }
  }
done:

  vine::json::Object summary;
  summary["format"] = "vine-workbench-summary";
  summary["version"] = 1;
  vine::json::Array rows;
  for (const Cell& c : cells) rows.push_back(cell_to_json(c));
  summary["cells"] = vine::json::Value(std::move(rows));
  auto wrote = vine::write_file_atomic(
      out_dir / "summary.json",
      vine::json::Value(std::move(summary)).dump_pretty() + "\n");
  if (!wrote.ok()) {
    std::fprintf(stderr, "cannot write summary: %s\n",
                 wrote.error().message.c_str());
    return 2;
  }

  print_table(cells);
  std::printf("\n%zu cells -> %s\n", cells.size(),
              (out_dir / "summary.json").string().c_str());
  return any_failed ? 2 : 0;
}
