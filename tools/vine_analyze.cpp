// vine_analyze — CLI driver for the whole-tree lock-graph analyzer.
//
// Usage:
//   vine_analyze <src-root> [--ranks FILE] [--allowlist FILE]
//                [--emit-ranks] [--report FILE]
//
// Runs as a ctest over src/: exits nonzero when any finding is not covered
// by a justified allowlist entry, when an allowlist entry goes unused, or
// when the emitted canonical rank table drifts from the committed one.
//
// --emit-ranks prints the canonical rank table (declared ranks + observed
// nesting constraints) to stdout and exits 0; pipe it into
// tools/lock_ranks.txt when the global order legitimately changes.
//
// Allowlist format (shared with vine_lint):
//   rule|path_suffix|line_substring|justification
// Every entry must carry a justification and must match at least one
// finding — stale entries fail the run so the allowlist cannot rot.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"

namespace {

struct AllowEntry {
  std::string rule;
  std::string path_suffix;
  std::string line_substr;
  std::string justification;
  bool used = false;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<AllowEntry> load_allowlist(const std::string& path, bool* ok) {
  std::vector<AllowEntry> entries;
  *ok = true;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "vine_analyze: cannot open allowlist: " << path << "\n";
    *ok = false;
    return entries;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    AllowEntry e;
    std::istringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, '|')) fields.push_back(field);
    if (fields.size() < 4 || fields[3].empty()) {
      std::cerr << "vine_analyze: allowlist line " << lineno
                << " lacks a justification (rule|path|substr|why): " << line
                << "\n";
      *ok = false;
      continue;
    }
    e.rule = fields[0];
    e.path_suffix = fields[1];
    e.line_substr = fields[2];
    e.justification = fields[3];
    entries.push_back(e);
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string ranks_path;
  std::string allowlist_path;
  std::string report_path;
  bool emit_ranks = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--ranks" && i + 1 < argc) {
      ranks_path = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--emit-ranks") {
      emit_ranks = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vine_analyze <src-root> [--ranks FILE] "
                   "[--allowlist FILE] [--emit-ranks] [--report FILE]\n";
      return 0;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "vine_analyze: unexpected argument: " << arg << "\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "vine_analyze: missing <src-root>\n";
    return 2;
  }

  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec)) {
    std::cerr << "vine_analyze: not a directory: " << root << "\n";
    return 2;
  }

  vine::analyze::Options opts;
  // --emit-ranks regenerates the table, so drift against the committed copy
  // is not checked in that mode.
  if (!emit_ranks) opts.ranks_path = ranks_path;

  vine::analyze::Analysis res = vine::analyze::analyze_tree(root, opts);

  if (emit_ranks) {
    std::cout << res.rank_table;
    return 0;
  }

  bool allow_ok = true;
  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) {
    allow = load_allowlist(allowlist_path, &allow_ok);
  }

  std::vector<const vine::analyze::Finding*> reported;
  for (const auto& f : res.findings) {
    bool allowed = false;
    for (auto& e : allow) {
      if (e.rule != f.rule) continue;
      if (!e.path_suffix.empty() && !ends_with(f.path, e.path_suffix)) continue;
      if (!e.line_substr.empty() &&
          f.message.find(e.line_substr) == std::string::npos) {
        continue;
      }
      e.used = true;
      allowed = true;
      break;
    }
    if (!allowed) reported.push_back(&f);
  }

  std::ostringstream report;
  report << "vine_analyze: scanned " << res.files_scanned << " files, "
         << res.functions_indexed << " functions, " << res.mutexes_indexed
         << " mutexes, " << res.call_edges << " call edges, " << res.lock_edges
         << " lock edges\n";
  for (const auto* f : reported) {
    report << f->path << ":" << f->line << ": [" << f->rule << "] "
           << f->message << "\n";
  }
  std::size_t suppressed = res.findings.size() - reported.size();
  if (suppressed > 0) {
    report << "(" << suppressed << " finding" << (suppressed == 1 ? "" : "s")
           << " suppressed by the allowlist)\n";
  }

  int rc = 0;
  for (const auto& e : allow) {
    if (!e.used) {
      report << "stale allowlist entry (matched nothing): " << e.rule << "|"
             << e.path_suffix << "|" << e.line_substr << "\n";
      rc = 1;
    }
  }
  if (!reported.empty()) {
    report << reported.size() << " finding" << (reported.size() == 1 ? "" : "s")
           << " not covered by the allowlist\n";
    rc = 1;
  }
  if (!allow_ok) rc = 1;
  if (rc == 0) report << "vine_analyze: clean\n";

  std::cout << report.str();
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << report.str() << "\n--- canonical rank table ---\n" << res.rank_table;
  }
  return rc;
}
