// Standalone TaskVine worker binary.
//
// Connects to a manager over TCP and serves tasks until told to shut down:
//
//   vine_worker --manager 127.0.0.1:9123 --id w0 --cores 8 \
//               --memory-mb 16000 --disk-mb 100000 --dir /scratch/vine-w0
//
// The storage directory persists worker-lifetime cache objects across
// invocations, enabling hot-cache startups (paper Figure 9b).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hpp"
#include "core/taskvine.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --manager HOST:PORT [--id NAME] [--cores N]\n"
               "          [--memory-mb N] [--disk-mb N] [--gpus N]\n"
               "          [--dir PATH] [--transfers N] [--verbose]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  vine::WorkerConfig config;
  config.id = "worker-" + std::to_string(::getpid());
  config.root_dir = "/tmp/vine-worker-" + config.id;
  config.tcp_transfer_service = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--manager") config.manager_addr = next();
    else if (arg == "--id") config.id = next();
    else if (arg == "--cores") config.resources.cores = std::atof(next());
    else if (arg == "--memory-mb") config.resources.memory_mb = std::atoll(next());
    else if (arg == "--disk-mb") config.resources.disk_mb = std::atoll(next());
    else if (arg == "--gpus") config.resources.gpus = std::atoi(next());
    else if (arg == "--dir") config.root_dir = next();
    else if (arg == "--transfers") config.max_concurrent_transfers = std::atoi(next());
    else if (arg == "--verbose") vine::set_log_level(vine::LogLevel::info);
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (config.manager_addr.empty()) {
    usage(argv[0]);
    return 2;
  }

  auto worker = vine::Worker::connect(std::move(config));
  if (!worker.ok()) {
    std::fprintf(stderr, "cannot start worker: %s\n",
                 worker.error().to_string().c_str());
    return 1;
  }
  (*worker)->run();  // until shutdown message or connection loss
  return 0;
}
