// vine_lint: project-specific static checks for the vine source tree.
//
// Scans *.hpp/*.cpp under a source root for patterns this codebase bans:
//
//   mutex-comment    std::mutex member without a lock-discipline comment
//                    ("Guards ..."/"Serializes ...") on or near the declaration
//   clock            direct std::chrono::system_clock / steady_clock::now /
//                    time() use that bypasses common/clock
//   rand             rand()/srand() instead of common/rng
//   new-delete       raw new/delete instead of RAII ownership
//   catch-all        catch (...) that swallows instead of rethrowing
//   errno-unchecked  strto* conversion with no errno check nearby
//   raw-io           naked ::recv/::read outside net/reactor.cpp, bypassing
//                    the Endpoint timeout/shutdown discipline
//   event-poll       ::poll/::select/epoll_* outside net/reactor.cpp; all
//                    socket readiness multiplexing belongs to the reactor
//                    (a second event loop fragments the data plane)
//   manual-lock      raw .lock()/.unlock() calls outside RAII guards; an
//                    early return or exception between them leaks the lock
//   detached-thread  std::thread::detach(); detached threads outlive their
//                    owner and race teardown — every thread must be joined
//
// Findings can be vetted via an allowlist file where every entry carries a
// justification (see tools/vine_lint_allowlist.txt). Exit status is nonzero
// iff any finding is not allowlisted, so the tool doubles as a ctest.
//
// Usage: vine_lint <src-root> [--allowlist <file>]

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;     // as reported (relative to the scanned root)
  std::size_t line;     // 1-based
  std::string rule;
  std::string message;
  bool allowed = false;
};

struct AllowEntry {
  std::string rule;
  std::string path_suffix;
  std::string line_substring;
  std::string justification;
  mutable bool used = false;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// True when `needle` occurs in `line` as a whole token (no identifier char
// on either side). `pos_out` receives the match offset.
bool find_token(const std::string& line, const std::string& needle,
                std::size_t* pos_out = nullptr) {
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t after = pos + needle.size();
    bool right_ok = after >= line.size() || !is_ident_char(line[after]);
    if (left_ok && right_ok) {
      if (pos_out) *pos_out = pos;
      return true;
    }
    ++pos;
  }
  return false;
}

// Produce a "code view" of the file: comments and string/char literal
// contents blanked out (replaced by spaces) so pattern rules do not fire on
// prose. Line structure is preserved exactly.
std::vector<std::string> code_view(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string cooked(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        cooked[i] = quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            cooked[i] = quote;
            break;
          }
          ++i;
        }
        continue;
      }
      cooked[i] = c;
    }
    out.push_back(std::move(cooked));
  }
  return out;
}

bool has_lock_comment(const std::vector<std::string>& raw, std::size_t idx) {
  auto mentions_discipline = [](const std::string& s) {
    return s.find("Guards") != std::string::npos ||
           s.find("guards") != std::string::npos ||
           s.find("Serializes") != std::string::npos ||
           s.find("serializes") != std::string::npos;
  };
  if (mentions_discipline(raw[idx])) return true;
  // Look back through the contiguous comment block above the declaration.
  for (std::size_t back = 1; back <= 12 && back <= idx; ++back) {
    std::string t = trim(raw[idx - back]);
    if (t.rfind("//", 0) != 0 && t.rfind("*", 0) != 0 &&
        t.rfind("/*", 0) != 0) {
      break;
    }
    if (mentions_discipline(t)) return true;
  }
  return false;
}

void scan_file(const fs::path& file, const std::string& rel,
               std::vector<Finding>& findings) {
  std::ifstream in(file);
  if (!in) return;
  std::vector<std::string> raw;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    raw.push_back(line);
  }
  const std::vector<std::string> code = code_view(raw);

  auto add = [&](std::size_t idx, const char* rule, std::string msg) {
    findings.push_back(Finding{rel, idx + 1, rule, std::move(msg)});
  };

  const bool is_clock_impl =
      rel == "common/clock.hpp" || rel == "common/clock.cpp";
  // The reactor owns every socket syscall in the tree; even the rest of
  // net/ (tcp.cpp adapters, channel transport) must stay I/O-free.
  const bool is_reactor_impl = rel == "net/reactor.cpp";

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& c = code[i];

    // mutex-comment: a mutex *member/global declaration* must say what it
    // guards. Covers both raw std::mutex (no '(' in a declaration) and
    // vine::Mutex, whose declarations carry a {Rank::...} initializer.
    {
      bool std_decl = false, vine_decl = false;
      std::string t = trim(c);
      if (c.find("std::mutex") != std::string::npos) {
        std_decl = !t.empty() && t.back() == ';' &&
                   t.find('(') == std::string::npos;
      }
      std::size_t mpos = 0;
      if (find_token(c, "Mutex", &mpos)) {
        vine_decl = !t.empty() && t.back() == ';' &&
                    c.find('{', mpos) != std::string::npos &&
                    c.find("Rank") != std::string::npos;
      }
      if ((std_decl || vine_decl) && !has_lock_comment(raw, i)) {
        add(i, "mutex-comment",
            "mutex member without a lock-discipline comment "
            "(say what it guards)");
      }
    }

    // clock: wall/monotonic clock reads must flow through common/clock so
    // tests can use virtual time.
    if (!is_clock_impl) {
      if (c.find("system_clock") != std::string::npos) {
        add(i, "clock",
            "std::chrono::system_clock used directly; route through "
            "common/clock");
      }
      if (c.find("steady_clock::now") != std::string::npos) {
        add(i, "clock",
            "steady_clock::now() used directly; route through common/clock");
      }
      std::size_t pos = 0;
      if (find_token(c, "time", &pos)) {
        std::size_t after = pos + 4;
        if (after < c.size() && c[after] == '(') {
          add(i, "clock", "time() used directly; route through common/clock");
        }
      }
    }

    // rand: libc PRNG is banned; use common/rng (seedable, reproducible).
    for (const char* fn : {"rand", "srand"}) {
      std::size_t pos = 0;
      if (find_token(c, fn, &pos)) {
        std::size_t after = pos + std::string(fn).size();
        if (after < c.size() && c[after] == '(') {
          add(i, "rand",
              std::string(fn) + "() is banned; use common/rng instead");
        }
      }
    }

    // new-delete: raw ownership is banned; the private-ctor factory idiom
    // wraps the result in a smart pointer on the same line.
    {
      std::size_t pos = 0;
      if (find_token(c, "new", &pos) &&
          c.find("unique_ptr<") == std::string::npos &&
          c.find("shared_ptr<") == std::string::npos &&
          c.find("make_unique") == std::string::npos &&
          c.find("make_shared") == std::string::npos) {
        add(i, "new-delete",
            "raw new without smart-pointer ownership on the same line");
      }
      if (find_token(c, "delete", &pos)) {
        bool deleted_member = pos >= 2 && c[pos - 1] == ' ' && c[pos - 2] == '=';
        if (!deleted_member) {
          add(i, "new-delete", "raw delete; use RAII ownership");
        }
      }
    }

    // catch-all: swallowing every exception hides programming errors; a
    // catch (...) must rethrow within a few lines.
    {
      std::size_t pos = c.find("catch");
      bool catch_all = false;
      if (pos != std::string::npos) {
        std::size_t p = pos + 5;
        while (p < c.size() && std::isspace(static_cast<unsigned char>(c[p]))) ++p;
        if (p < c.size() && c[p] == '(') {
          std::string inside = c.substr(p);
          if (inside.find("...") != std::string::npos &&
              inside.find("...") < inside.find(')')) {
            catch_all = true;
          }
        }
      }
      if (catch_all) {
        bool rethrows = false;
        for (std::size_t j = i; j < code.size() && j <= i + 6; ++j) {
          if (find_token(code[j], "throw")) {
            rethrows = true;
            break;
          }
        }
        if (!rethrows) {
          add(i, "catch-all", "catch (...) without rethrow swallows errors");
        }
      }
    }

    // raw-io: wire reads must flow through the net layer's Endpoint, whose
    // recv() carries the idle/mid-frame timeout and shutdown discipline a
    // naked syscall bypasses (a silent peer would wedge the calling thread
    // forever, invisible to the heartbeat/eviction machinery).
    if (!is_reactor_impl) {
      for (const char* fn : {"::recv", "::read"}) {
        std::size_t pos = c.find(fn);
        if (pos != std::string::npos &&
            (pos == 0 || !is_ident_char(c[pos - 1]))) {
          std::size_t after = pos + std::string(fn).size();
          if (after < c.size() && c[after] == '(') {
            add(i, "raw-io",
                std::string(fn) +
                    "() outside net/reactor.cpp; use Endpoint::recv with "
                    "its timeout discipline");
          }
        }
      }
    }

    // event-poll: readiness multiplexing outside the reactor means a
    // second event loop owning sockets the reactor cannot see — blocking
    // threads the deadline scan cannot kill and fds its teardown cannot
    // close. All of it belongs in net/reactor.cpp.
    if (!is_reactor_impl) {
      for (const char* fn : {"::poll", "::select", "epoll_create",
                             "epoll_ctl", "epoll_wait"}) {
        std::size_t pos = c.find(fn);
        if (pos != std::string::npos &&
            (pos == 0 || !is_ident_char(c[pos - 1]))) {
          std::size_t after = pos + std::string(fn).size();
          if (after < c.size() && (c[after] == '(' || c[after] == '1')) {
            add(i, "event-poll",
                std::string(fn) +
                    " outside net/reactor.cpp; socket multiplexing belongs "
                    "to the reactor");
          }
        }
      }
    }

    // manual-lock: bare .lock()/.unlock() on a mutex-ish receiver. Any
    // early return or exception between the pair leaks the lock; use
    // MutexLock/UniqueLock (or std::lock_guard on foreign mutexes). The
    // guard types themselves call through to the raw pair and are
    // allowlisted where they live.
    for (const char* fn : {"lock", "unlock"}) {
      std::size_t pos = 0;
      std::size_t search = 0;
      while ((pos = c.find(fn, search)) != std::string::npos) {
        search = pos + 1;
        std::size_t after = pos + std::string(fn).size();
        if (after >= c.size() || c[after] != '(') continue;
        if (pos >= 1 && is_ident_char(c[pos - 1])) continue;  // try_lock etc.
        bool member_call =
            (pos >= 1 && c[pos - 1] == '.') ||
            (pos >= 2 && c[pos - 2] == '-' && c[pos - 1] == '>');
        if (!member_call) continue;
        // Guard-object re-lock (UniqueLock lk; ... lk.lock()) is still a
        // manual protocol: flag it too and let the allowlist justify real
        // uses. But skip declarations like `void lock()` (preceded by a
        // type) — those appear only in the wrapper and are allowlisted.
        add(i, "manual-lock",
            std::string(".") + fn +
                "() outside an RAII guard; use MutexLock/UniqueLock");
        break;
      }
    }

    // detached-thread: a detached thread cannot be joined at shutdown, so
    // it races destruction of everything it touches. All vine threads are
    // tracked and joined (see Worker::threads_mutex_ discipline).
    {
      std::size_t pos = 0;
      if (find_token(c, "detach", &pos)) {
        std::size_t after = pos + 6;
        bool member_call =
            (pos >= 1 && c[pos - 1] == '.') ||
            (pos >= 2 && c[pos - 2] == '-' && c[pos - 1] == '>');
        if (member_call && after < c.size() && c[after] == '(') {
          add(i, "detached-thread",
              "std::thread::detach() is banned; track the thread and join it "
              "at shutdown");
        }
      }
    }

    // errno-unchecked: strto* reports overflow only via errno; a call with
    // no errno mention within +-3 lines silently accepts clamped values.
    for (const char* fn :
         {"strtol", "strtoll", "strtoul", "strtoull", "strtod", "strtof"}) {
      std::size_t pos = 0;
      if (!find_token(c, fn, &pos)) continue;
      std::size_t after = pos + std::string(fn).size();
      if (after >= c.size() || c[after] != '(') continue;
      bool checked = false;
      std::size_t lo = i >= 3 ? i - 3 : 0;
      std::size_t hi = std::min(code.size() - 1, i + 3);
      for (std::size_t j = lo; j <= hi; ++j) {
        if (code[j].find("errno") != std::string::npos) {
          checked = true;
          break;
        }
      }
      if (!checked) {
        add(i, "errno-unchecked",
            std::string(fn) + "() without a nearby errno check");
      }
      break;  // one finding per line is enough
    }
  }
}

std::vector<AllowEntry> load_allowlist(const fs::path& file,
                                       bool* parse_ok) {
  std::vector<AllowEntry> entries;
  *parse_ok = true;
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "vine_lint: cannot open allowlist %s\n",
                 file.string().c_str());
    *parse_ok = false;
    return entries;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    // rule|path_suffix|line_substring|justification
    std::vector<std::string> parts;
    std::stringstream ss(t);
    std::string part;
    while (std::getline(ss, part, '|')) parts.push_back(trim(part));
    if (parts.size() != 4 || parts[3].empty()) {
      std::fprintf(stderr,
                   "vine_lint: allowlist line %zu malformed (need "
                   "rule|path_suffix|line_substring|justification)\n",
                   lineno);
      *parse_ok = false;
      continue;
    }
    entries.push_back(AllowEntry{parts[0], parts[1], parts[2], parts[3]});
  }
  return entries;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::string allowlist_arg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--allowlist" && i + 1 < argc) {
      allowlist_arg = argv[++i];
    } else if (root_arg.empty()) {
      root_arg = a;
    } else {
      std::fprintf(stderr, "usage: vine_lint <src-root> [--allowlist <file>]\n");
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::fprintf(stderr, "usage: vine_lint <src-root> [--allowlist <file>]\n");
    return 2;
  }

  fs::path root(root_arg);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "vine_lint: %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& f : files) {
    scan_file(f, fs::relative(f, root).generic_string(), findings);
  }

  bool allow_ok = true;
  std::vector<AllowEntry> allow;
  if (!allowlist_arg.empty()) {
    allow = load_allowlist(allowlist_arg, &allow_ok);
  }

  std::size_t open_count = 0;
  for (Finding& f : findings) {
    // Fetch the raw line text for substring matching against the allowlist.
    std::ifstream in(root / f.path);
    std::string raw_line;
    for (std::size_t n = 0; n < f.line && std::getline(in, raw_line); ++n) {}
    for (const AllowEntry& e : allow) {
      if (e.rule == f.rule && ends_with(f.path, e.path_suffix) &&
          (e.line_substring.empty() ||
           raw_line.find(e.line_substring) != std::string::npos)) {
        f.allowed = true;
        e.used = true;
        break;
      }
    }
    if (!f.allowed) {
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      ++open_count;
    }
  }

  for (const AllowEntry& e : allow) {
    if (!e.used) {
      std::printf("allowlist: unused entry %s|%s|%s (remove it)\n",
                  e.rule.c_str(), e.path_suffix.c_str(),
                  e.line_substring.c_str());
      ++open_count;
    }
  }

  if (open_count == 0 && allow_ok) {
    std::printf("vine_lint: %zu files scanned, %zu findings allowlisted, "
                "0 open\n",
                files.size(), findings.size());
    return 0;
  }
  std::printf("vine_lint: %zu open finding(s)\n", open_count);
  return 1;
}
