#!/bin/sh
# Regenerate the checked-in golden traces under tests/goldens/ after an
# intentional change to the vine::obs event vocabulary or emission points.
#
# Usage: tools/update_goldens.sh [BUILD_DIR]
#
# Builds the golden test binary, reruns it with VINE_UPDATE_GOLDENS=1 (which
# rewrites the goldens in the source tree), then runs it once more normally
# to prove the fresh goldens reproduce. Review the resulting diff before
# committing — a golden change is a schema/vocabulary change.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target test_golden_trace

VINE_UPDATE_GOLDENS=1 "$BUILD_DIR/tests/test_golden_trace"
"$BUILD_DIR/tests/test_golden_trace"

echo "goldens updated:"
git -C . diff --stat -- tests/goldens || true
