// Ablation — the serverless model (paper §4.2 BGD conclusion: "improve
// workflow task throughput by changing task overheads to be performed once
// per worker instead of once per task"). Runs the BGD workload both ways
// and sweeps the per-task startup cost to find where the model pays off.
#include <cstdio>
#include <cstring>

#include "apps/bgd.hpp"
#include "apps/report.hpp"

using namespace vineapps;

int main(int argc, char** argv) {
  BgdParams params;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      params.function_calls = 400;
      params.workers = 40;
    }
  }

  std::printf("# abl_serverless: BGD %d calls on %d workers, init-cost sweep\n",
              params.function_calls, params.workers);

  bool shape_ok = true;
  double headline_ratio = 0;
  for (double init : {10.0, 25.0, 40.0, 80.0}) {
    BgdParams p = params;
    p.library_init_seconds = init;
    auto serverless = run_bgd(p, true);
    auto baseline = run_bgd(p, false);
    double ratio = baseline.makespan / serverless.makespan;
    std::printf("row,abl_serverless,%g,%.2f,%.2f,%.3f\n", init,
                serverless.makespan, baseline.makespan, ratio);
    if (init == params.library_init_seconds) headline_ratio = ratio;
  }

  // Shape: with the default (realistic) init cost the serverless model
  // wins, and its advantage grows with the init cost.
  summary_row("abl_serverless", "default_speedup", headline_ratio);
  shape_ok = headline_ratio > 1.0;
  summary_row("abl_serverless", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
