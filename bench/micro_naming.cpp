// Micro-benchmarks — cache-name generation costs (paper §3.2 notes "there
// is some expense to producing such names"): MD5/SHA-1 throughput,
// directory-document hashing, task-spec Merkle hashing, URL naming tiers,
// and vpak archive codec throughput.
#include <benchmark/benchmark.h>

#include "archive/vpak.hpp"
#include "files/naming.hpp"
#include "hash/digest.hpp"
#include "hash/dirhash.hpp"
#include "hash/md5.hpp"
#include "hash/sha1.hpp"
#include "task/task_hash.hpp"

namespace {

using namespace vine;

void BM_Md5Throughput(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::hex(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 22);

void BM_Sha1Throughput(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hex(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(1 << 16)->Arg(1 << 22);

void BM_DirDocumentHash(benchmark::State& state) {
  std::vector<DirDocEntry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back({DirDocEntry::Kind::file, "file-" + std::to_string(i),
                       i * 100, "md5-0123456789abcdef0123456789abcdef"});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_dir_document(entries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DirDocumentHash)->Arg(10)->Arg(1000)->Arg(100000);

FileRef bench_file(std::string name) {
  auto f = std::make_shared<FileDecl>();
  f->cache_name = std::move(name);
  return f;
}

void BM_TaskSpecHash(benchmark::State& state) {
  TaskSpec spec;
  spec.command = "blast -db landmark -q query";
  spec.env["BLASTDB"] = "landmark";
  for (int i = 0; i < state.range(0); ++i) {
    spec.inputs.push_back(
        {bench_file("md5-0123456789abcdef0123456789abcde" + std::to_string(i)),
         "input-" + std::to_string(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(task_spec_hash(spec));
  }
}
BENCHMARK(BM_TaskSpecHash)->Arg(3)->Arg(30)->Arg(300);

void BM_UrlNamingTier1(benchmark::State& state) {
  MemoryUrlFetcher fetcher;
  fetcher.put("http://a/pkg", std::string(1 << 20, 'z'), "deadbeef");
  for (auto _ : state) {
    benchmark::DoNotOptimize(url_cache_name("http://a/pkg", fetcher));
  }
}
BENCHMARK(BM_UrlNamingTier1);

void BM_UrlNamingTier3Download(benchmark::State& state) {
  MemoryUrlFetcher fetcher;
  fetcher.put("http://bare/pkg", std::string(1 << 20, 'z'));  // no headers
  for (auto _ : state) {
    benchmark::DoNotOptimize(url_cache_name("http://bare/pkg", fetcher));
  }
}
BENCHMARK(BM_UrlNamingTier3Download);

void BM_VpakWrite(benchmark::State& state) {
  std::vector<VpakEntry> entries;
  for (int i = 0; i < 64; ++i) {
    entries.push_back({VpakEntry::Kind::file, "f" + std::to_string(i),
                       std::string(static_cast<std::size_t>(state.range(0)), 'd')});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vpak_write(entries));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          state.range(0));
}
BENCHMARK(BM_VpakWrite)->Arg(1 << 10)->Arg(1 << 16);

void BM_VpakRead(benchmark::State& state) {
  std::vector<VpakEntry> entries;
  for (int i = 0; i < 64; ++i) {
    entries.push_back({VpakEntry::Kind::file, "f" + std::to_string(i),
                       std::string(static_cast<std::size_t>(state.range(0)), 'd')});
  }
  std::string archive = vpak_write(entries);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vpak_read(archive));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(archive.size()));
}
BENCHMARK(BM_VpakRead)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
