// Figure 11 — distributing one 200 MB file to 500 workers under three
// transfer regimes:
//   a. every worker downloads from the URL/archive directly;
//   b. worker-to-worker transfers without supervision (unmanaged peers);
//   c. worker-to-worker transfers limited by the manager to 3 per source.
//
// Paper claim: (c) completes in roughly half the time of (a), and (b)
// suffers from hotspots where an unlucky worker serves far too many peers.
#include <cstdio>
#include <cstring>

#include "apps/filedist.hpp"
#include "apps/report.hpp"

using namespace vineapps;

int main(int argc, char** argv) {
  FileDistParams params;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) params.workers = 100;
  }

  std::printf("# fig11: transfer methods for common data (%lldMB to %d workers)\n",
              static_cast<long long>(params.file_bytes / 1000000), params.workers);

  auto url = run_filedist(params, DistMode::worker_to_url);
  auto unsup = run_filedist(params, DistMode::unsupervised);
  auto sup = run_filedist(params, DistMode::supervised);

  print_completion_curve("fig11a_worker_url", *url.sim);
  print_completion_curve("fig11b_unsupervised", *unsup.sim);
  print_completion_curve("fig11c_limited", *sup.sim);
  print_summary("fig11a_worker_url", *url.sim);
  print_summary("fig11b_unsupervised", *unsup.sim);
  print_summary("fig11c_limited", *sup.sim);

  summary_row("fig11", "a_url_makespan_s", url.makespan);
  summary_row("fig11", "b_unsupervised_makespan_s", unsup.makespan);
  summary_row("fig11", "c_limited_makespan_s", sup.makespan);
  summary_row("fig11", "a_over_c", url.makespan / sup.makespan);

  // Shape: managed peer transfers beat the URL fan-out by ~2x, and beat
  // the unsupervised mode as well.
  bool shape_ok = url.makespan / sup.makespan > 1.5 &&
                  unsup.makespan > sup.makespan;
  summary_row("fig11", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
