// Micro-benchmarks — manager data structures and decision rates. The
// paper's §6 observes that at one millisecond per task, dispatching a
// million tasks costs a thousand seconds; these benches measure what this
// implementation's placement and bookkeeping actually cost.
#include <benchmark/benchmark.h>

#include "catalog/replica_table.hpp"
#include "catalog/transfer_table.hpp"
#include "proto/messages.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace vine;

void BM_ReplicaTableUpdate(benchmark::State& state) {
  FileReplicaTable table;
  int i = 0;
  for (auto _ : state) {
    table.set_replica("file-" + std::to_string(i % 10000),
                      "w" + std::to_string(i % 500), ReplicaState::present, 100);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplicaTableUpdate);

void BM_ReplicaTableLookup(benchmark::State& state) {
  FileReplicaTable table;
  for (int f = 0; f < 10000; ++f) {
    table.set_replica("file-" + std::to_string(f), "w" + std::to_string(f % 500),
                      ReplicaState::present, 100);
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.workers_with("file-" + std::to_string(i % 10000)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplicaTableLookup);

void BM_TransferTableCycle(benchmark::State& state) {
  CurrentTransferTable table;
  for (auto _ : state) {
    auto uuid = table.begin("f", "w1", TransferSource::from_worker("w2"), 0);
    benchmark::DoNotOptimize(table.inflight_from(TransferSource::from_worker("w2")));
    table.finish(uuid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransferTableCycle);

FileRef bench_file(std::string name) {
  auto f = std::make_shared<FileDecl>();
  f->cache_name = std::move(name);
  return f;
}

/// Placement cost as a function of cluster size — the §6 scaling concern.
void BM_PickWorker(benchmark::State& state) {
  int n_workers = static_cast<int>(state.range(0));
  std::vector<WorkerSnapshot> workers(static_cast<std::size_t>(n_workers));
  FileReplicaTable replicas;
  for (int w = 0; w < n_workers; ++w) {
    workers[static_cast<std::size_t>(w)].id = "w" + std::to_string(w);
    workers[static_cast<std::size_t>(w)].total = {.cores = 8, .memory_mb = 16000,
                                                  .disk_mb = 100000, .gpus = 0};
    replicas.set_replica("dataset", "w" + std::to_string(w % 7),
                         ReplicaState::present, 1 << 30);
  }
  TaskSpec task;
  task.resources = {.cores = 1, .memory_mb = 100, .disk_mb = 10, .gpus = 0};
  task.inputs.push_back({bench_file("dataset"), "dataset"});

  Scheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.pick_worker(task, workers, replicas));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PickWorker)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_PlanSource(benchmark::State& state) {
  FileReplicaTable replicas;
  CurrentTransferTable transfers;
  for (int w = 0; w < 20; ++w) {
    replicas.set_replica("pkg", "w" + std::to_string(w), ReplicaState::present,
                         1 << 20);
  }
  Scheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.plan_source(
        "pkg", TransferSource::from_url("http://a"), "dest", replicas, transfers));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanSource);

/// Full wire round trip of a task message: the per-dispatch serialization
/// cost on the real control channel.
void BM_TaskWireRoundTrip(benchmark::State& state) {
  proto::WireTask task;
  task.id = 42;
  task.command = "blast -db landmark -q query";
  task.env["BLASTDB"] = "landmark";
  for (int i = 0; i < 3; ++i) {
    task.inputs.push_back({"md5-0123456789abcdef0123456789abcdef",
                           "input-" + std::to_string(i), CacheLevel::workflow});
  }
  for (auto _ : state) {
    auto text = proto::wire_task_to_json(task).dump();
    auto parsed = json::parse(text);
    benchmark::DoNotOptimize(proto::wire_task_from_json(*parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskWireRoundTrip);

}  // namespace

BENCHMARK_MAIN();
