// Micro-benchmarks — manager data structures and decision rates. The
// paper's §6 observes that at one millisecond per task, dispatching a
// million tasks costs a thousand seconds; these benches measure what this
// implementation's placement and bookkeeping actually cost.
#include <benchmark/benchmark.h>

#include "catalog/replica_table.hpp"
#include "catalog/transfer_table.hpp"
#include "proto/messages.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace vine;

void BM_ReplicaTableUpdate(benchmark::State& state) {
  FileReplicaTable table;
  int i = 0;
  for (auto _ : state) {
    table.set_replica("file-" + std::to_string(i % 10000),
                      "w" + std::to_string(i % 500), ReplicaState::present, 100);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplicaTableUpdate);

void BM_ReplicaTableLookup(benchmark::State& state) {
  FileReplicaTable table;
  for (int f = 0; f < 10000; ++f) {
    table.set_replica("file-" + std::to_string(f), "w" + std::to_string(f % 500),
                      ReplicaState::present, 100);
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.workers_with("file-" + std::to_string(i % 10000)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplicaTableLookup);

void BM_TransferTableCycle(benchmark::State& state) {
  CurrentTransferTable table;
  for (auto _ : state) {
    auto uuid = table.begin("f", "w1", TransferSource::from_worker("w2"), 0);
    benchmark::DoNotOptimize(table.inflight_from(TransferSource::from_worker("w2")));
    table.finish(uuid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransferTableCycle);

FileRef bench_file(std::string name) {
  auto f = std::make_shared<FileDecl>();
  f->cache_name = std::move(name);
  return f;
}

/// Placement cost as a function of cluster size — the §6 scaling concern.
void BM_PickWorker(benchmark::State& state) {
  int n_workers = static_cast<int>(state.range(0));
  std::vector<WorkerSnapshot> workers(static_cast<std::size_t>(n_workers));
  FileReplicaTable replicas;
  for (int w = 0; w < n_workers; ++w) {
    workers[static_cast<std::size_t>(w)].id = "w" + std::to_string(w);
    workers[static_cast<std::size_t>(w)].total = {.cores = 8, .memory_mb = 16000,
                                                  .disk_mb = 100000, .gpus = 0};
    replicas.set_replica("dataset", "w" + std::to_string(w % 7),
                         ReplicaState::present, 1 << 30);
  }
  TaskSpec task;
  task.resources = {.cores = 1, .memory_mb = 100, .disk_mb = 10, .gpus = 0};
  task.inputs.push_back({bench_file("dataset"), "dataset"});

  Scheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.pick_worker(task, workers, replicas));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PickWorker)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_PlanSource(benchmark::State& state) {
  FileReplicaTable replicas;
  CurrentTransferTable transfers;
  for (int w = 0; w < 20; ++w) {
    replicas.set_replica("pkg", "w" + std::to_string(w), ReplicaState::present,
                         1 << 20);
  }
  Scheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.plan_source(
        "pkg", TransferSource::from_url("http://a"), "dest", replicas, transfers));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanSource);

/// One full scheduling pass at cluster scale — 2000 workers, a deep
/// fan-in DAG (16 reducers x 16-way fan-in) with 256 ready producers to
/// place. The greedy variant runs the bracket with no DagView; the
/// lookahead variant pays for DagView refill, consumer-gravity scoring on
/// every pick, within-pass expected-output updates, and the prefetch
/// planner. tools/bench.sh gates lookahead at <= 2x the greedy pass cost.
void run_schedule_pass(benchmark::State& state, bool lookahead) {
  constexpr int kWorkers = 2000;
  constexpr int kGroups = 16;
  constexpr int kFan = 16;

  std::vector<WorkerSnapshot> workers(kWorkers);
  std::map<WorkerId, std::uint32_t> slot_of;
  FileReplicaTable replicas;
  for (int w = 0; w < kWorkers; ++w) {
    workers[static_cast<std::size_t>(w)].id = "w" + std::to_string(w);
    workers[static_cast<std::size_t>(w)].total = {
        .cores = 16, .memory_mb = 32000, .disk_mb = 200000, .gpus = 0};
    slot_of[workers[static_cast<std::size_t>(w)].id] =
        static_cast<std::uint32_t>(w);
  }

  // The fig13/topeft regime: every processing task reads a hot shared
  // dataset chunk that the workflow has already replicated across dozens
  // of workers, plus a group-local base input. The first two temps per
  // group are pending (their producers are the tasks being placed), the
  // rest already materialized on scattered holders — so the reducers sit 2
  // completions from ready, inside the prefetch horizon.
  for (int ds = 0; ds < 4; ++ds) {
    for (int r = 0; r < 32; ++r) {
      replicas.set_replica("ds" + std::to_string(ds),
                           workers[static_cast<std::size_t>(
                                       (ds * 401 + r * 61) % kWorkers)].id,
                           ReplicaState::present, std::int64_t{6} << 30);
    }
  }
  std::vector<TaskSpec> producers;
  std::vector<std::string> out_names;
  for (int g = 0; g < kGroups; ++g) {
    const std::string base = "base" + std::to_string(g);
    for (int r = 0; r < 4; ++r) {
      replicas.set_replica(base, workers[static_cast<std::size_t>(
                                             (g * 31 + r * 97) % kWorkers)].id,
                           ReplicaState::present, 1 << 30);
    }
    for (int p = 0; p < kFan; ++p) {
      const std::string temp =
          "t" + std::to_string(g) + "_" + std::to_string(p);
      if (p < 2) {
        TaskSpec task;
        task.id = static_cast<TaskId>(producers.size() + 1);
        task.resources = {.cores = 1, .memory_mb = 100, .disk_mb = 10, .gpus = 0};
        task.inputs.push_back(
            {bench_file("ds" + std::to_string(g % 4)), "dataset"});
        task.inputs.push_back({bench_file(base), base});
        task.outputs.push_back({bench_file(temp), temp});
        producers.push_back(std::move(task));
        out_names.push_back(temp);
      } else {
        replicas.set_replica(
            temp, workers[static_cast<std::size_t>((g * kFan + p * 53) % kWorkers)].id,
            ReplicaState::present, 100 << 20);
      }
    }
  }
  // Pad the ready set to 256 placements per pass with pending-output
  // producers from every group.
  while (producers.size() < 256) {
    const int g = static_cast<int>(producers.size()) % kGroups;
    TaskSpec task = producers[static_cast<std::size_t>(g) * 2];
    task.id = static_cast<TaskId>(producers.size() + 1);
    producers.push_back(std::move(task));
    out_names.push_back(out_names[static_cast<std::size_t>(g) * 2]);
  }

  SchedulerConfig cfg;
  cfg.lookahead.enabled = lookahead;
  Scheduler sched(cfg, 1);
  CurrentTransferTable transfers;
  DagView dag;

  // Dep name strings are precomputed: the hosts hand stored cache names to
  // add_dep, so per-iteration string building would overstate refill cost.
  struct BenchDep {
    std::string name;
    std::int64_t bytes;
    bool pending;
  };
  std::vector<std::vector<BenchDep>> waiting_deps(kGroups);
  for (int g = 0; g < kGroups; ++g) {
    waiting_deps[static_cast<std::size_t>(g)].push_back(
        {"base" + std::to_string(g), 1 << 30, false});
    for (int p = 0; p < kFan; ++p) {
      waiting_deps[static_cast<std::size_t>(g)].push_back(
          {"t" + std::to_string(g) + "_" + std::to_string(p), 100 << 20, p < 2});
    }
  }

  for (auto _ : state) {
    dag.clear();
    if (lookahead) {
      for (int g = 0; g < kGroups; ++g) {
        const auto idx = dag.add_waiting(static_cast<TaskId>(10000 + g));
        for (const BenchDep& d : waiting_deps[static_cast<std::size_t>(g)]) {
          dag.add_dep(idx, d.name, d.bytes, d.pending);
        }
      }
    }
    sched.begin_pass(lookahead ? &dag : nullptr);
    for (std::size_t i = 0; i < producers.size(); ++i) {
      auto picked = sched.pick_worker(producers[i], workers, replicas);
      benchmark::DoNotOptimize(picked);
      if (lookahead && picked) dag.note_expected(out_names[i], slot_of[*picked]);
    }
    if (lookahead) {
      benchmark::DoNotOptimize(
          sched.plan_prefetch(dag, workers, replicas, transfers, 0.0));
    }
    sched.end_pass();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(producers.size()));
}

void BM_GreedyPass(benchmark::State& state) { run_schedule_pass(state, false); }
BENCHMARK(BM_GreedyPass);

void BM_LookaheadPass(benchmark::State& state) { run_schedule_pass(state, true); }
BENCHMARK(BM_LookaheadPass);

/// Full wire round trip of a task message: the per-dispatch serialization
/// cost on the real control channel.
void BM_TaskWireRoundTrip(benchmark::State& state) {
  proto::WireTask task;
  task.id = 42;
  task.command = "blast -db landmark -q query";
  task.env["BLASTDB"] = "landmark";
  for (int i = 0; i < 3; ++i) {
    task.inputs.push_back({"md5-0123456789abcdef0123456789abcdef",
                           "input-" + std::to_string(i), CacheLevel::workflow});
  }
  for (auto _ : state) {
    auto text = proto::wire_task_to_json(task).dump();
    auto parsed = json::parse(text);
    benchmark::DoNotOptimize(proto::wire_task_from_json(*parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskWireRoundTrip);

}  // namespace

BENCHMARK_MAIN();
