// Micro-benchmarks — the vine::obs tracing hot path. Every manager
// scheduling pass, worker cache mutation, and sim fetch completion runs
// through the same two-step pattern: a null-check on the configured sink
// (tracing off) or TraceSink::emit (tracing on). The CI gate keeps those
// honest: the disabled path must stay a branch on a pointer (effectively
// free), and an enabled emit must stay under 150 ns/event so tracing can
// be left on for full paper-scale simulations.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "obs/trace_sink.hpp"

namespace {

using vine::obs::Event;
using vine::obs::TraceSink;
using vine::obs::TraceSinkOptions;

/// Tracing disabled: exactly what an emitter call site does when no sink
/// is configured — test a null pointer and skip the event construction
/// entirely. This must not measurably differ from an empty loop.
void BM_EmitDisabled(benchmark::State& state) {
  std::shared_ptr<TraceSink> sink;  // tracing off
  double t = 0;
  for (auto _ : state) {
    t += 1e-6;
    if (sink) {
      sink->emit("manager", Event::make_cache_insert(t, "w0", "f", 64, "store"));
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitDisabled);

/// Tracing enabled, views only (no retention, no file): the sink append
/// path with a pre-built event — one Event copy, the sink's critical
/// section, seq/clock stamping, and the ViewBuilder fold. cache_insert is
/// tally-only in the views, so the measurement isolates the per-emit cost
/// without accumulating unbounded view state across iterations.
void BM_EmitEnabled(benchmark::State& state) {
  TraceSink sink(TraceSinkOptions{.retain_events = false, .jsonl_path = ""});
  const Event proto = Event::make_cache_insert(0, "w0", "file-0", 64, "store");
  double t = 0;
  for (auto _ : state) {
    Event ev = proto;
    ev.t = (t += 1e-6);
    sink.emit("worker:w0", std::move(ev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitEnabled);

/// Enabled emit plus JSONL streaming: adds canonical serialization and the
/// buffered ofstream write. Not gated (throughput is dominated by the
/// filesystem), reported for sizing trace-on simulation runs.
void BM_EmitStreamed(benchmark::State& state) {
  TraceSink sink(
      TraceSinkOptions{.retain_events = false, .jsonl_path = "/dev/null"});
  const Event proto = Event::make_cache_insert(0, "w0", "file-0", 64, "store");
  double t = 0;
  for (auto _ : state) {
    Event ev = proto;
    ev.t = (t += 1e-6);
    sink.emit("worker:w0", std::move(ev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitStreamed);

/// Canonical JSONL serialization alone (what flush-time writing and the
/// golden tests pay per event).
void BM_EventToJsonl(benchmark::State& state) {
  const Event ev = Event::make_transfer_end(1.25, "dataset-000.vpak", "worker",
                                            "w17", "w3", "w3", 200000000,
                                            "uuid-0123456789abcdef", true);
  for (auto _ : state) {
    std::string line = vine::obs::event_to_jsonl(ev);
    benchmark::DoNotOptimize(line);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventToJsonl);

}  // namespace

BENCHMARK_MAIN();
