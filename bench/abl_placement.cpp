// Ablation — task placement policy. The paper schedules tasks to the
// worker holding the most of their dependencies; this sweep compares that
// against random / round-robin / first-fit on a cache-heavy workload
// (BLAST-like: big shared assets plus per-task buffers) and reports the
// resulting data movement.
#include <cstdio>
#include <cstring>

#include "apps/blast.hpp"
#include "apps/report.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster_sim.hpp"

using namespace vineapps;
using vinesim::SimFile;

namespace {

struct Outcome {
  double makespan;
  double gb_moved;
};

Outcome run_policy(vine::PlacementPolicy policy, int tasks, int workers) {
  vinesim::SimConfig cfg;
  cfg.sched.placement = policy;
  cfg.sched.worker_source_limit = 3;
  vinesim::ClusterSim sim(cfg);
  for (int w = 0; w < workers; ++w) {
    sim.add_worker("w" + std::to_string(w), 0, 4);
  }
  // Two large shared datasets; each task uses one of them (half and half),
  // so good placement should converge to dataset-per-worker affinity.
  auto* a = sim.declare_file("dataset-a", 500 * 1000 * 1000, SimFile::Origin::archive);
  auto* b = sim.declare_file("dataset-b", 500 * 1000 * 1000, SimFile::Origin::archive);
  vine::Rng rng(5);
  for (int i = 0; i < tasks; ++i) {
    auto* t = sim.add_task("t", rng.exponential(20));
    t->inputs = {(i % 2 == 0) ? a : b};
  }
  double makespan = sim.run();
  const auto& st = sim.stats();
  double gb = (st.bytes_from_archive + st.bytes_from_peers) / 1e9;
  return {makespan, gb};
}

}  // namespace

int main(int argc, char** argv) {
  int tasks = 2000, workers = 50;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      tasks = 400;
      workers = 20;
    }
  }
  std::printf("# abl_placement: %d tasks over %d workers, two 500MB shared datasets\n",
              tasks, workers);

  struct Row {
    const char* name;
    vine::PlacementPolicy policy;
  } rows[] = {
      {"most_cached", vine::PlacementPolicy::most_cached},
      {"random", vine::PlacementPolicy::random},
      {"round_robin", vine::PlacementPolicy::round_robin},
      {"first_fit", vine::PlacementPolicy::first_fit},
  };

  double most_cached_gb = 0, worst_gb = 0;
  for (const auto& row : rows) {
    auto out = run_policy(row.policy, tasks, workers);
    std::printf("row,abl_placement,%s,%.2f,%.3f\n", row.name, out.makespan,
                out.gb_moved);
    if (row.policy == vine::PlacementPolicy::most_cached) {
      most_cached_gb = out.gb_moved;
    }
    worst_gb = std::max(worst_gb, out.gb_moved);
  }

  // Shape: dependency-aware placement moves no more data than the
  // alternatives (it cannot always win on makespan — idle cores also
  // matter — but it must win on bytes moved).
  bool shape_ok = most_cached_gb <= worst_gb + 1e-9;
  summary_row("abl_placement", "most_cached_GB", most_cached_gb);
  summary_row("abl_placement", "worst_GB", worst_gb);
  summary_row("abl_placement", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
