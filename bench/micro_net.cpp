// Micro-benchmarks — the TCP data plane (src/net/reactor.cpp). Two claims
// from DESIGN.md "Data plane" are gated here against the frozen
// thread-per-connection baseline (tools/bench.sh BASELINE_NET):
//
//   * BM_SmallFrames/N — control-message throughput across N concurrent
//     connections, 16 frames pipelined per connection per round. The
//     reactor coalesces queued frames into one writev and batch-decodes
//     the inbound buffer; the baseline paid one blocking write syscall
//     per frame and one parked reader thread per connection.
//   * BM_BlobServe — loopback GB/s streaming a 64 MB cached blob, the
//     worker→worker peer-serve path. sendfile moves the bytes without a
//     userspace copy; BM_BlobServeFallback measures the pread+writev path
//     (VINE_DISABLE_SENDFILE builds) and is informational, not gated.
//
// The same source builds against the pre-reactor transport when
// VINE_BENCH_LEGACY_SEND is defined (no send_blob_file, no push-mode
// receivers): that is how the baseline numbers in tools/bench.sh were
// measured — see the re-baselining note there.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "net/frame.hpp"
#include "net/tcp.hpp"
#ifndef VINE_BENCH_LEGACY_SEND
#include "net/reactor.hpp"
#endif

namespace {

using namespace std::chrono_literals;
using vine::Endpoint;
using vine::Frame;
using vine::Listener;

/// Serve a file-backed blob the way the worker does: zero-copy on the
/// reactor transport, read-then-send on the legacy one.
vine::Status send_file_frame(Endpoint& ep, const std::string& tag,
                             const std::string& path, std::uint64_t size) {
#ifndef VINE_BENCH_LEGACY_SEND
  return ep.send_blob_file(tag, path, size);
#else
  std::ifstream in(path, std::ios::binary);
  std::string data(size, '\0');
  in.read(data.data(), static_cast<std::streamsize>(size));
  return ep.send_blob(tag, std::move(data));
#endif
}

/// N established loopback connection pairs with a frame counter on the
/// serving side: receiver callbacks on the reactor transport, one recv
/// thread per connection on transports without push delivery (which is
/// precisely the baseline's thread-per-connection model).
struct NetRig {
  std::unique_ptr<Listener> listener;
  std::vector<std::unique_ptr<Endpoint>> clients;
  std::vector<std::unique_ptr<Endpoint>> servers;
  std::vector<std::thread> readers;
  std::atomic<std::int64_t> received{0};
  std::atomic<std::int64_t> expected{0};
  std::mutex done_mu;  // pairs with done_cv for the end-of-round handoff
  std::condition_variable done_cv;

  explicit NetRig(int conns) {
    auto l = vine::tcp_listen(0);
    if (!l.ok()) std::abort();
    listener = std::move(*l);
    for (int i = 0; i < conns; ++i) {
      auto c = vine::tcp_connect(listener->address(), 5000ms);
      auto s = listener->accept(5000ms);
      if (!c.ok() || !s.ok()) std::abort();
      clients.push_back(std::move(*c));
      servers.push_back(std::move(*s));
      Endpoint* ep = servers.back().get();
#ifndef VINE_BENCH_LEGACY_SEND
      const bool push_mode = ep->set_receiver([this](vine::Result<Frame> f) {
        if (f.ok()) count_one();
      });
#else
      const bool push_mode = false;  // pre-reactor Endpoint: pull-only
#endif
      if (!push_mode) {
        readers.emplace_back([this, ep] {
          while (true) {
            auto f = ep->recv(200ms);
            if (f.ok()) {
              count_one();
            } else if (f.error().code != vine::Errc::timeout) {
              return;
            }
          }
        });
      }
    }
  }

  ~NetRig() {
    for (auto& c : clients) c->close();
    for (auto& s : servers) s->close();
    for (auto& t : readers) t.join();
  }

  void count_one() {
    const std::int64_t now = received.fetch_add(1, std::memory_order_relaxed) + 1;
    if (now == expected.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lk(done_mu);
      done_cv.notify_one();
    }
  }

  /// Block (not spin) until `target` frames are counted: a yield loop
  /// would fight the transport threads for the CPU and distort the
  /// measurement on small machines.
  void wait_received(std::int64_t target) {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] {
      return received.load(std::memory_order_relaxed) >= target;
    });
  }
};

/// Small-message throughput at state.range(0) connections: each round
/// pipelines 16 heartbeat-sized frames per connection, then waits for
/// every frame to be counted on the serving side. The payload is a tiny
/// blob, not JSON: the JSON codec is identical in both builds and would
/// only dilute the transport comparison this gate exists to keep honest.
void BM_SmallFrames(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  constexpr int kDepth = 16;
  NetRig rig(conns);
  const std::string body(24, 'h');  // heartbeat-sized payload

  std::int64_t sent = 0;
  for (auto _ : state) {
    // The round's target must be published before the first send, or a
    // fast transport could count the final frame against a stale target
    // and skip the wakeup.
    sent += static_cast<std::int64_t>(conns) * kDepth;
    rig.expected.store(sent, std::memory_order_relaxed);
    for (auto& client : rig.clients) {
      for (int k = 0; k < kDepth; ++k) {
        if (!client->send_blob("hb", body).ok()) std::abort();
      }
    }
    rig.wait_received(sent);
  }
  state.SetItemsProcessed(sent);
}
BENCHMARK(BM_SmallFrames)->Arg(8)->Arg(64)->Arg(256)->UseRealTime();

constexpr std::uint64_t kBlobSize = 64ull * 1024 * 1024;

/// One 64 MB file-backed blob per iteration over a single loopback
/// connection — the peer-transfer serve path. Reported as bytes/s.
void blob_serve_loop(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() /
                    "vine-micro-net-blob.bin";
  {
    std::string bytes(kBlobSize, '\0');
    for (std::size_t i = 0; i < bytes.size(); i += 4096) {
      bytes[i] = static_cast<char>(i >> 12);
    }
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto listener = vine::tcp_listen(0);
  auto client = vine::tcp_connect((*listener)->address(), 5000ms);
  auto server = (*listener)->accept(5000ms);
  if (!client.ok() || !server.ok()) std::abort();

  for (auto _ : state) {
    // Send from a helper thread: the legacy transport's send_blob is a
    // blocking write that outgrows the loopback socket buffer, so sender
    // and receiver must run concurrently (the reactor just enqueues).
    std::thread sender([&] {
      if (!send_file_frame(**server, "blob", path.string(), kBlobSize).ok()) {
        std::abort();
      }
    });
    auto got = (*client)->recv(30000ms);
    if (!got.ok() || got->data.size() != kBlobSize) std::abort();
    sender.join();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBlobSize));
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void BM_BlobServe(benchmark::State& state) { blob_serve_loop(state); }
BENCHMARK(BM_BlobServe)->UseRealTime();

#ifndef VINE_BENCH_LEGACY_SEND
/// The pread+writev fallback (VINE_DISABLE_SENDFILE): same wire bytes,
/// one extra userspace copy. Informational — shows what the build flag
/// costs on platforms without sendfile.
void BM_BlobServeFallback(benchmark::State& state) {
  vine::set_sendfile_enabled(false);
  blob_serve_loop(state);
  vine::set_sendfile_enabled(true);
}
BENCHMARK(BM_BlobServeFallback)->UseRealTime();
#endif

}  // namespace

BENCHMARK_MAIN();
