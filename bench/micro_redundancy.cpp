// Redundancy chaos soak — replication on vs off under worker loss.
//
// Runs the Figure-13 accumulation DAG at fig13@500 scale through the same
// fault plans the chaos suite uses (>= 5% of the pool crashed, peer faults,
// delays) twice per seed: once with the redundancy engine off and once with
// k=2 replication on. The paper's robustness claim is that paying replica
// bytes up front beats re-running producer chains after a loss, so the
// gate is on-makespan <= off-makespan on average across the seeds, and
// every replicated temp must survive without a producer re-run.
//
// Output: one CSV row per seed plus summary rows; tools/bench.sh parses
// the rows into BENCH_redundancy.json and enforces the gate there too.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/report.hpp"
#include "apps/topeft.hpp"
#include "common/faults.hpp"
#include "common/uuid.hpp"

using namespace vineapps;

namespace {

struct SoakRun {
  double makespan = 0;
  vinesim::SimStats stats;
};

SoakRun run_soak(std::uint64_t seed, bool replication) {
  vine::reseed_uuid_generator(seed);
  TopEftParams p;
  p.scale = 500.0 / 24000.0;  // fig13@500: ~500-task accumulation DAG
  p.workers = 40;
  p.worker_arrival_span = 300;
  p.seed = seed;
  p.redundancy.enabled = replication;

  vine::faults::FaultPlanConfig fp;
  fp.seed = seed;
  fp.workers = p.workers;
  fp.horizon = 1500.0;
  fp.set_crash_fraction(0.05);
  fp.peer_faults = 4;
  fp.delays = 2;
  fp.rejoin_mean = 120.0;
  vine::faults::FaultPlan plan = vine::faults::FaultPlan::generate(fp);
  p.faults = &plan;

  TopEftRun run = run_topeft(p, /*shared_storage=*/false);
  SoakRun r;
  r.makespan = run.makespan;
  r.stats = run.sim->stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 5;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    }
  }

  std::printf("# micro_redundancy: fig13@500 chaos soak, replication on vs off"
              " (%d seeds)\n", seeds);
  std::printf("redundancy_seed,seed,off_makespan_s,on_makespan_s,replications,"
              "replica_repairs,recoveries_off,recoveries_on,"
              "recoveries_replicated\n");

  double sum_off = 0, sum_on = 0;
  std::int64_t unfinished = 0, unreplicated_losses = 0;
  for (int s = 1; s <= seeds; ++s) {
    SoakRun off = run_soak(static_cast<std::uint64_t>(s), false);
    SoakRun on = run_soak(static_cast<std::uint64_t>(s), true);
    std::printf("redundancy_seed,%d,%.3f,%.3f,%lld,%lld,%lld,%lld,%lld\n", s,
                off.makespan, on.makespan,
                static_cast<long long>(on.stats.replications),
                static_cast<long long>(on.stats.replica_repairs),
                static_cast<long long>(off.stats.recoveries),
                static_cast<long long>(on.stats.recoveries),
                static_cast<long long>(on.stats.recoveries_replicated));
    sum_off += off.makespan;
    sum_on += on.makespan;
    unfinished += off.stats.tasks_unfinished + on.stats.tasks_unfinished;
    unreplicated_losses += on.stats.recoveries_replicated;
  }

  double mean_off = sum_off / seeds;
  double mean_on = sum_on / seeds;
  summary_row("redundancy", "mean_makespan_off_s", mean_off);
  summary_row("redundancy", "mean_makespan_on_s", mean_on);
  summary_row("redundancy", "on_over_off", mean_on / mean_off);

  // Shape: replication must not cost makespan on average (the replica
  // transfers ride spare slots), every run must drain its DAG, and no
  // temp that ever reached k replicas may have needed a producer re-run.
  bool shape_ok = mean_on <= mean_off * 1.001 && unfinished == 0 &&
                  unreplicated_losses == 0;
  summary_row("redundancy", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
