// Figure 13 — TopEFT under shared storage vs in-cluster storage.
//
// Paper claim: when every partial histogram is brought back to the manager
// before accumulation (a), the repeated transfer of growing results
// bottlenecks the system, "especially near the end of execution where we
// observe a delay in data retrieval"; keeping partials as in-cluster
// temporary files (b) lets the workflow conclude rapidly.
//
// Both modes run the same ~27K-task DAG (scaled); the key series are the
// completion curves and the *tail*: the time between the last processor
// task finishing and the workflow completing.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/report.hpp"
#include "apps/topeft.hpp"

using namespace vineapps;

namespace {

double processor_finish(const vinesim::ClusterSim& sim) {
  double last = 0;
  for (const auto& t : sim.trace().tasks()) {
    if (t.category.rfind("proc-", 0) == 0) last = std::max(last, t.finished_at);
  }
  return last;
}

/// All bytes the workflow moves between cluster nodes: peer-to-peer input
/// fetches plus prefetched bytes (completed and wasted). Shared-filesystem
/// chunk reads are excluded — both policies read the same chunks.
std::int64_t cluster_bytes_moved(const vinesim::ClusterSim& sim) {
  const auto& s = sim.stats();
  return s.bytes_from_peers + s.bytes_prefetch + s.prefetch_wasted_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  TopEftParams params;
  params.scale = 0.125;            // ~3.4K tasks by default
  params.worker_arrival_span = 0;  // full cluster from the start: isolates
                                   // the storage-mode effect
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--full")) params.scale = 1.0;  // ~27K tasks
    if (!std::strcmp(argv[i], "--quick")) params.scale = 0.02;
    if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      params.workers = std::atoi(argv[++i]);  // bench.sh times 500 workers
    }
  }

  auto shared = run_topeft(params, /*shared_storage=*/true);
  auto incluster = run_topeft(params, /*shared_storage=*/false);
  TopEftParams ahead_params = params;
  ahead_params.lookahead = true;
  auto ahead = run_topeft(ahead_params, /*shared_storage=*/false);
  std::printf("# fig13: TopEFT shared vs in-cluster storage (%d tasks)\n",
              shared.total_tasks);

  print_completion_curve("fig13a_shared", *shared.sim);
  print_completion_curve("fig13b_incluster", *incluster.sim);
  print_completion_curve("fig13c_lookahead", *ahead.sim);
  print_task_view("fig13a_shared", *shared.sim);
  print_task_view("fig13b_incluster", *incluster.sim);
  print_summary("fig13a_shared", *shared.sim);
  print_summary("fig13b_incluster", *incluster.sim);
  print_summary("fig13c_lookahead", *ahead.sim);

  double tail_shared = shared.makespan - processor_finish(*shared.sim);
  double tail_incluster = incluster.makespan - processor_finish(*incluster.sim);

  summary_row("fig13", "shared_makespan_s", shared.makespan);
  summary_row("fig13", "incluster_makespan_s", incluster.makespan);
  summary_row("fig13", "shared_over_incluster", shared.makespan / incluster.makespan);
  summary_row("fig13", "shared_tail_s", tail_shared);
  summary_row("fig13", "incluster_tail_s", tail_incluster);
  summary_row("fig13", "GB_moved_to_manager_shared",
              shared.sim->stats().bytes_to_manager / 1e9);
  summary_row("fig13", "GB_moved_to_manager_incluster",
              incluster.sim->stats().bytes_to_manager / 1e9);

  // Lookahead vs greedy, both in-cluster: consumer-gravity placement puts
  // producers where their accumulator's other inputs already live, so
  // fewer partials cross the network at all.
  const std::int64_t moved_greedy = cluster_bytes_moved(*incluster.sim);
  const std::int64_t moved_ahead = cluster_bytes_moved(*ahead.sim);
  summary_row("fig13", "lookahead_makespan_s", ahead.makespan);
  summary_row("fig13", "GB_cluster_moved_greedy", moved_greedy / 1e9);
  summary_row("fig13", "GB_cluster_moved_lookahead", moved_ahead / 1e9);
  summary_row("fig13", "lookahead_bytes_reduction",
              1.0 - static_cast<double>(moved_ahead) /
                        static_cast<double>(moved_greedy));
  summary_row("fig13", "prefetch_issued",
              static_cast<double>(ahead.sim->stats().prefetch_issued));
  summary_row("fig13", "prefetch_hits",
              static_cast<double>(ahead.sim->stats().prefetch_hits));

  // Shape: in-cluster temps conclude faster overall, with a much shorter
  // end-of-run retrieval tail, and the shared mode routes vastly more
  // bytes through the manager. With lookahead on, in-cluster bytes moved
  // drop by at least 20% and the makespan does not regress. The lookahead
  // gate only applies when the cluster has placement slack (enough cores
  // to co-locate sibling producers); on a saturated cluster placement is
  // forced wherever a core frees and gravity is correctly a no-op, so the
  // reduction is reported but not enforced.
  const double total_cores = params.workers * params.worker_cores;
  const int processors =
      static_cast<int>((params.processors_data + params.processors_mc) *
                       params.scale);
  const bool slack = total_cores >= processors;
  bool shape_ok = shared.makespan > incluster.makespan &&
                  tail_shared > 1.5 * tail_incluster &&
                  shared.sim->stats().bytes_to_manager >
                      10 * incluster.sim->stats().bytes_to_manager;
  bool lookahead_ok = !slack || (moved_ahead * 5 <= moved_greedy * 4 &&
                                 ahead.makespan <= incluster.makespan * 1.001);
  summary_row("fig13", "shape_holds", shape_ok ? "yes" : "NO");
  summary_row("fig13", "lookahead_holds",
              slack ? (lookahead_ok ? "yes" : "NO") : "ungated");
  return shape_ok && lookahead_ok ? 0 : 1;
}
