// Figure 13 — TopEFT under shared storage vs in-cluster storage.
//
// Paper claim: when every partial histogram is brought back to the manager
// before accumulation (a), the repeated transfer of growing results
// bottlenecks the system, "especially near the end of execution where we
// observe a delay in data retrieval"; keeping partials as in-cluster
// temporary files (b) lets the workflow conclude rapidly.
//
// Both modes run the same ~27K-task DAG (scaled); the key series are the
// completion curves and the *tail*: the time between the last processor
// task finishing and the workflow completing.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/report.hpp"
#include "apps/topeft.hpp"

using namespace vineapps;

namespace {

double processor_finish(const vinesim::ClusterSim& sim) {
  double last = 0;
  for (const auto& t : sim.trace().tasks()) {
    if (t.category.rfind("proc-", 0) == 0) last = std::max(last, t.finished_at);
  }
  return last;
}

}  // namespace

int main(int argc, char** argv) {
  TopEftParams params;
  params.scale = 0.125;            // ~3.4K tasks by default
  params.worker_arrival_span = 0;  // full cluster from the start: isolates
                                   // the storage-mode effect
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--full")) params.scale = 1.0;  // ~27K tasks
    if (!std::strcmp(argv[i], "--quick")) params.scale = 0.02;
    if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      params.workers = std::atoi(argv[++i]);  // bench.sh times 500 workers
    }
  }

  auto shared = run_topeft(params, /*shared_storage=*/true);
  auto incluster = run_topeft(params, /*shared_storage=*/false);
  std::printf("# fig13: TopEFT shared vs in-cluster storage (%d tasks)\n",
              shared.total_tasks);

  print_completion_curve("fig13a_shared", *shared.sim);
  print_completion_curve("fig13b_incluster", *incluster.sim);
  print_task_view("fig13a_shared", *shared.sim);
  print_task_view("fig13b_incluster", *incluster.sim);
  print_summary("fig13a_shared", *shared.sim);
  print_summary("fig13b_incluster", *incluster.sim);

  double tail_shared = shared.makespan - processor_finish(*shared.sim);
  double tail_incluster = incluster.makespan - processor_finish(*incluster.sim);

  summary_row("fig13", "shared_makespan_s", shared.makespan);
  summary_row("fig13", "incluster_makespan_s", incluster.makespan);
  summary_row("fig13", "shared_over_incluster", shared.makespan / incluster.makespan);
  summary_row("fig13", "shared_tail_s", tail_shared);
  summary_row("fig13", "incluster_tail_s", tail_incluster);
  summary_row("fig13", "GB_moved_to_manager_shared",
              shared.sim->stats().bytes_to_manager / 1e9);
  summary_row("fig13", "GB_moved_to_manager_incluster",
              incluster.sim->stats().bytes_to_manager / 1e9);

  // Shape: in-cluster temps conclude faster overall, with a much shorter
  // end-of-run retrieval tail, and the shared mode routes vastly more
  // bytes through the manager.
  bool shape_ok = shared.makespan > incluster.makespan &&
                  tail_shared > 1.5 * tail_incluster &&
                  shared.sim->stats().bytes_to_manager >
                      10 * incluster.sim->stats().bytes_to_manager;
  summary_row("fig13", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
