// Figure 9 — BLAST workflow with cold vs hot worker caches.
//
// Paper claim: with a cold cluster cache roughly a quarter of the total
// execution is spent transferring and staging the software/database
// assets; on a subsequent (hot) run that startup phase disappears.
//
// Output: completion curves and worker views for both runs, plus summary
// rows including the cold/hot makespan ratio and staging share.
#include <cstdio>
#include <cstring>

#include "apps/blast.hpp"
#include "apps/report.hpp"

using namespace vineapps;

int main(int argc, char** argv) {
  BlastParams params;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      params.tasks = 400;
      params.workers = 25;
    }
  }

  std::printf("# fig09: BLAST cold vs hot cache (%d tasks, %d x %g-core workers)\n",
              params.tasks, params.workers, params.worker_cores);

  auto cold = run_blast(params, /*hot=*/false);
  auto hot = run_blast(params, /*hot=*/true);

  print_completion_curve("fig09a_cold", *cold.sim);
  print_completion_curve("fig09b_hot", *hot.sim);
  print_worker_view("fig09a_cold", *cold.sim, 20);
  print_worker_view("fig09b_hot", *hot.sim, 20);
  print_summary("fig09a_cold", *cold.sim);
  print_summary("fig09b_hot", *hot.sim);

  // Shape checks mirroring the paper's reading of the figure.
  double ratio = cold.makespan / hot.makespan;
  summary_row("fig09", "cold_makespan_s", cold.makespan);
  summary_row("fig09", "hot_makespan_s", hot.makespan);
  summary_row("fig09", "cold_over_hot", ratio);

  // Staging share of the cold run: mean transfer fraction across workers.
  double transfer = 0, busy = 0;
  for (int w = 0; w < params.workers; ++w) {
    auto u = cold.sim->trace().utilization("w" + std::to_string(w), cold.makespan);
    transfer += u.transfer;
    busy += u.busy;
  }
  summary_row("fig09", "cold_staging_fraction", transfer / (transfer + busy));
  summary_row("fig09", "hot_archive_transfers",
              static_cast<double>(hot.sim->stats().transfers_from_archive));

  bool shape_ok = ratio > 1.1 && hot.sim->stats().transfers_from_archive == 0;
  summary_row("fig09", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
