// Figure 10 — independent per-task environment unpacking vs a shared
// unpack mini-task.
//
// Paper claim: 1000 ten-second tasks needing a 610 MB package finish much
// faster when a mini-task unpacks the environment once per worker instead
// of each task expanding it itself.
#include <cstdio>
#include <cstring>

#include "apps/envpkg.hpp"
#include "apps/report.hpp"

using namespace vineapps;

int main(int argc, char** argv) {
  EnvPkgParams params;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      params.tasks = 200;
      params.workers = 10;
    }
  }

  std::printf("# fig10: independent tasks vs shared mini-tasks (%d tasks, %d workers, %lldMB package)\n",
              params.tasks, params.workers,
              static_cast<long long>(params.package_bytes / 1000000));

  auto independent = run_envpkg(params, /*shared=*/false);
  auto shared = run_envpkg(params, /*shared=*/true);

  print_completion_curve("fig10a_independent", *independent.sim);
  print_completion_curve("fig10b_shared", *shared.sim);
  print_worker_view("fig10a_independent", *independent.sim, 10);
  print_worker_view("fig10b_shared", *shared.sim, 10);
  print_summary("fig10a_independent", *independent.sim);
  print_summary("fig10b_shared", *shared.sim);

  double speedup = independent.makespan / shared.makespan;
  summary_row("fig10", "independent_makespan_s", independent.makespan);
  summary_row("fig10", "shared_makespan_s", shared.makespan);
  summary_row("fig10", "speedup_from_sharing", speedup);
  summary_row("fig10", "unpacks_shared_mode",
              static_cast<double>(shared.sim->stats().unpacks));

  // Shape: sharing wins clearly; one unpack per worker, not per task.
  bool shape_ok = speedup > 1.5 &&
                  shared.sim->stats().unpacks <= params.workers;
  summary_row("fig10", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
