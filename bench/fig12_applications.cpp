// Figure 12 — the three application case studies, each rendered as the
// paper's two views: the task view (rows = tasks, execution intervals) and
// the worker view (rows = workers, busy/transfer/idle over time).
//
//   12a/d TopEFT     — accumulation DAG over gradually arriving workers,
//                      with the real-data -> Monte-Carlo phase shift.
//   12b/e Colmena    — 1.4 GB environment spread worker-to-worker; only a
//                      handful of shared-FS reads (108 -> 3 claim).
//   12c/f BGD        — serverless library deployment ramp, then peak
//                      FunctionCall throughput.
#include <cstdio>
#include <cstring>

#include "apps/bgd.hpp"
#include "apps/colmena.hpp"
#include "apps/report.hpp"
#include "apps/topeft.hpp"

using namespace vineapps;

int main(int argc, char** argv) {
  double topeft_scale = 0.125;  // ~3.4K tasks by default; --full for ~27K
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--full")) topeft_scale = 1.0;
    if (!std::strcmp(argv[i], "--quick")) quick = true;
  }

  bool all_ok = true;

  // ------------------------------------------------------------- TopEFT
  {
    TopEftParams p;
    p.scale = quick ? 0.02 : topeft_scale;
    auto run = run_topeft(p, /*shared_storage=*/false);
    std::printf("# fig12a/d: TopEFT (%d tasks, %d workers arriving over %.0fs)\n",
                run.total_tasks, p.workers, p.worker_arrival_span);
    print_task_view("fig12a_topeft", *run.sim);
    print_worker_view("fig12d_topeft", *run.sim, 25);
    print_summary("fig12a_topeft", *run.sim);
    all_ok &= run.sim->stats().tasks_unfinished == 0;
  }

  // ------------------------------------------------------------ Colmena
  {
    ColmenaParams p;
    if (quick) {
      p.simulation_tasks = 200;
      p.inference_tasks = 50;
      p.workers = 30;
    }
    auto with_peers = run_colmena(p, /*peer_transfers=*/true);
    auto without = run_colmena(p, /*peer_transfers=*/false);
    std::printf("# fig12b/e: Colmena-XTB (%d+%d tasks, %d workers, %lldMB env)\n",
                p.inference_tasks, p.simulation_tasks, p.workers,
                static_cast<long long>(p.env_bytes / 1000000));
    print_task_view("fig12b_colmena", *with_peers.sim);
    print_worker_view("fig12e_colmena", *with_peers.sim, 25);
    print_summary("fig12b_colmena", *with_peers.sim);

    // The 108 -> 3 shared-filesystem-query claim.
    auto fs_with = with_peers.sim->stats().transfers_from_sharedfs;
    auto fs_without = without.sim->stats().transfers_from_sharedfs;
    auto peer_with = with_peers.sim->stats().transfers_from_peers;
    summary_row("fig12_colmena", "sharedfs_reads_without_peers",
                static_cast<double>(fs_without));
    summary_row("fig12_colmena", "sharedfs_reads_with_peers",
                static_cast<double>(fs_with));
    summary_row("fig12_colmena", "peer_copies", static_cast<double>(peer_with));
    all_ok &= fs_with <= p.transfer_limit && fs_without == p.workers;
  }

  // ---------------------------------------------------------------- BGD
  {
    BgdParams p;
    if (quick) {
      p.function_calls = 300;
      p.workers = 40;
    }
    auto run = run_bgd(p, /*serverless=*/true);
    std::printf("# fig12c/f: BGD serverless (%d calls, %d workers, %lldMB env)\n",
                p.function_calls, p.workers,
                static_cast<long long>(p.env_bytes / 1000000));
    print_task_view("fig12c_bgd", *run.sim);
    print_worker_view("fig12f_bgd", *run.sim, 25);
    print_summary("fig12c_bgd", *run.sim);

    // Ramp shape: throughput in the first minutes is below steady state
    // because libraries are still deploying; env staged once per worker.
    all_ok &= run.sim->stats().unpacks == p.workers;
    all_ok &= run.sim->stats().tasks_unfinished == 0;
    summary_row("fig12_bgd", "library_env_unpacks",
                static_cast<double>(run.sim->stats().unpacks));
  }

  summary_row("fig12", "shape_holds", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
