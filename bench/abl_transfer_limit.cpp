// Ablation — the per-source concurrent-transfer limit (paper §4.1: a limit
// of 3 "was found to perform slightly better than two and four").
// Sweeps the Figure 11c workload over limits {1,2,3,4,8,16}.
#include <cstdio>
#include <cstring>

#include "apps/filedist.hpp"
#include "apps/report.hpp"

using namespace vineapps;

int main(int argc, char** argv) {
  FileDistParams params;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) params.workers = 100;
  }

  std::printf("# abl_transfer_limit: 200MB to %d workers, per-source limit sweep\n",
              params.workers);

  double best = 1e300;
  int best_limit = 0;
  for (int limit : {1, 2, 3, 4, 8, 16}) {
    params.transfer_limit = limit;
    auto run = run_filedist(params, DistMode::supervised);
    std::printf("row,abl_transfer_limit,%d,%.2f\n", limit, run.makespan);
    if (run.makespan < best) {
      best = run.makespan;
      best_limit = limit;
    }
  }
  summary_row("abl_transfer_limit", "best_limit", best_limit);
  summary_row("abl_transfer_limit", "best_makespan_s", best);

  // Shape: a small limit (2-4) wins; both extremes are worse.
  bool shape_ok = best_limit >= 2 && best_limit <= 4;
  summary_row("abl_transfer_limit", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
