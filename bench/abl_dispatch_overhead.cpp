// Ablation — manager dispatch overhead (paper §6): "at even one
// millisecond per task, it would still take a thousand seconds to dispatch
// a million tasks". Sweeps per-dispatch cost for a workload of short tasks
// and reports where the manager, rather than the workers, becomes the
// bottleneck.
#include <cstdio>
#include <cstring>

#include "apps/report.hpp"
#include "sim/cluster_sim.hpp"

using vineapps::summary_row;

namespace {

double run_with_overhead(double overhead_s, int tasks, int workers,
                         double task_seconds) {
  vinesim::SimConfig cfg;
  cfg.dispatch_overhead = overhead_s;
  vinesim::ClusterSim sim(cfg);
  for (int w = 0; w < workers; ++w) {
    sim.add_worker("w" + std::to_string(w), 0, 8);
  }
  for (int i = 0; i < tasks; ++i) {
    sim.add_task("t", task_seconds);
  }
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  int tasks = 20000, workers = 100;
  double task_seconds = 5;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) tasks = 2000;
  }

  std::printf("# abl_dispatch_overhead: %d x %.0fs tasks on %d 8-core workers\n",
              tasks, task_seconds, workers);
  // Ideal makespan with free dispatch: tasks*duration/cores.
  double ideal = tasks * task_seconds / (workers * 8.0);
  summary_row("abl_dispatch", "ideal_makespan_s", ideal);

  double base = 0;
  for (double overhead : {0.0, 0.0001, 0.001, 0.01}) {
    double makespan = run_with_overhead(overhead, tasks, workers, task_seconds);
    if (overhead == 0.0) base = makespan;
    std::printf("row,abl_dispatch,%g,%.2f\n", overhead, makespan);
  }

  // The dispatch-bound regime: at 10 ms/task the manager needs
  // tasks*0.01 seconds just to issue work, dominating the ideal makespan.
  double bound = run_with_overhead(0.01, tasks, workers, task_seconds);
  summary_row("abl_dispatch", "dispatch_bound_floor_s", tasks * 0.01);
  bool shape_ok = bound > std::max(base, tasks * 0.01 * 0.9);
  summary_row("abl_dispatch", "shape_holds", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
